(* Partition equivalence: an oid-sliced engine group must be observably
   identical to the single engine — same firings in the same order, same
   action log, same automaton states, same exact observability counters
   and byte-identical ODE1 images — at any partition count, on both
   store backends, under random schemas and random transaction scripts.
   The generators and runners are shared with test_shard.ml: the same
   workloads that pinned Heap = Sharded and 1 domain = 4 domains now pin
   1 partition = 2 = 4.

   Directed tests cover what the properties cannot see from the facade:
   a cross-partition composite (a database-scope [sequence] whose
   participating objects live on different members, stepped via the
   packed-code forwarding path), [choose n] counting creations across
   members, the partition-transparent image (save at one count, load at
   another), the partitioned WAL (per-member logs + group manifest,
   recovery, mismatch refusal), the ODE_PARTITIONS selector and the
   config surface. *)

open Ode_odb
module D = Database
module TS = Test_shard
module Value = Ode_base.Value
module Symbol = Ode_event.Symbol

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

(* Directed tests pin the whole config (environment ignored) so they
   mean the same thing on every CI leg. *)
let cfg ?(backend = `Heap) ?durability ~partitions () =
  let c = { D.Config.default with D.Config.backend; partitions } in
  match durability with
  | None -> c
  | Some d -> { c with D.Config.durability = d }

let fresh_dir () =
  let d = Filename.temp_file "ode_part" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let partitions_transparent =
  QCheck.Test.make ~count:30
    ~name:"partitions 1 = 2 = 4 (firings, states, persist bytes)"
    (QCheck.make ~print:TS.print_case TS.gen_case)
    (fun case ->
      QCheck.assume (List.for_all TS.compiles case.TS.triggers);
      let p1 = TS.run ~partitions:1 ~backend:`Heap case in
      p1 = TS.run ~partitions:2 ~backend:`Heap case
      && p1 = TS.run ~partitions:4 ~backend:`Heap case
      && p1 = TS.run ~partitions:2 ~backend:(`Sharded 3) case
      && p1 = TS.run ~partitions:4 ~backend:(`Sharded 4) case)

let post_many_partitions_equal =
  QCheck.Test.make ~count:30
    ~name:"post_many: partitions 1 = 2 = 4 (exact counters, persist bytes)"
    (QCheck.make ~print:TS.print_batch_case TS.gen_batch_case)
    (fun case ->
      QCheck.assume (List.for_all TS.compiles case.TS.btriggers);
      let p1 = TS.run_batch ~partitions:1 ~backend:(`Sharded 4) ~domains:1 case in
      p1 = TS.run_batch ~partitions:2 ~backend:(`Sharded 4) ~domains:1 case
      && p1 = TS.run_batch ~partitions:4 ~backend:(`Sharded 4) ~domains:4 case
      && p1 = TS.run_batch ~partitions:2 ~backend:`Heap ~domains:2 case)

(* ------------------------------------------------------------------ *)
(* Cross-partition composites                                          *)
(* ------------------------------------------------------------------ *)

(* A database-scope [sequence] whose two participating objects live on
   different members: the creation steps the facade-owned automaton
   from the creating member, the deletion from another. Run the same
   script at 1 and 4 partitions; firings, their order and the image
   bytes must agree — and at 4 partitions the two oids must really
   have distinct owners (or the test proves nothing). *)
let test_cross_partition_sequence () =
  let drive partitions =
    let fired = ref [] in
    let db = D.create_db ~config:(cfg ~partitions ()) () in
    D.register_class db (D.define_class "c");
    D.db_trigger_str db ~perpetual:true "seq"
      ~event:"after create ; before delete"
      ~action:(fun _ ctx -> fired := ("seq", ctx.D.fc_oid) :: !fired);
    D.activate_db_trigger db "seq" [];
    D.db_trigger_str db ~perpetual:true "third" ~event:"choose 3 (after create)"
      ~action:(fun _ ctx -> fired := ("third", ctx.D.fc_oid) :: !fired);
    D.activate_db_trigger db "third" [];
    let oids =
      expect_ok
        (D.with_txn db (fun _ -> List.init 4 (fun _ -> D.create db "c" [])))
    in
    (match partitions with
    | 1 -> ()
    | n ->
      (* owner = oid mod n, the Engine_group routing rule *)
      let o1 = List.nth oids 0 and o2 = List.nth oids 1 in
      Alcotest.(check bool)
        "participants live on different members" true
        (o1 mod n <> o2 mod n));
    expect_ok (D.with_txn db (fun _ -> D.delete db (List.nth oids 1)));
    expect_ok (D.with_txn db (fun _ -> ignore (D.create db "c" [])));
    (List.rev !fired, D.image_bytes db)
  in
  let fired1, img1 = drive 1 in
  let fired4, img4 = drive 4 in
  Alcotest.(check bool) "some cross-partition firing" true (fired1 <> []);
  Alcotest.(check bool) "same firings, same order" true (fired1 = fired4);
  Alcotest.(check bool) "byte-identical images" true (String.equal img1 img4)

(* ------------------------------------------------------------------ *)
(* Partition-transparent images                                        *)
(* ------------------------------------------------------------------ *)

(* Save mid-sequence at one partition count, load at another; the
   automaton picks up where it left off and the re-saved bytes are
   unchanged. *)
let test_cross_count_image () =
  let fired = ref 0 in
  let mk partitions =
    let db = D.create_db ~config:(cfg ~backend:(`Sharded 4) ~partitions ()) () in
    let b = D.define_class "c" in
    let b = D.method_ b ~kind:D.Read_only "f" (fun _ _ _ -> Value.Unit) in
    let b = D.method_ b ~kind:D.Updating "g" (fun _ _ _ -> Value.Unit) in
    let b =
      D.trigger_str b "t" ~event:"after f ; after g" ~action:(fun _ _ ->
          incr fired)
    in
    D.register_class db b;
    db
  in
  let db = mk 3 in
  let oids =
    expect_ok
      (D.with_txn db (fun _ ->
           List.init 5 (fun _ ->
               let oid = D.create db "c" [] in
               D.activate db oid "t" [];
               oid)))
  in
  expect_ok
    (D.with_txn db (fun _ ->
         List.iter (fun oid -> ignore (D.call db oid "f" [])) oids));
  let img = D.image_bytes db in
  let tmp = Filename.temp_file "ode_part" ".img" in
  D.save db tmp;
  List.iter
    (fun partitions ->
      let db2 = mk partitions in
      D.load db2 tmp;
      Alcotest.(check bool)
        (Printf.sprintf "reloaded image identical at %d partitions" partitions)
        true
        (String.equal img (D.image_bytes db2));
      let before = !fired in
      expect_ok
        (D.with_txn db2 (fun _ ->
             List.iter (fun oid -> ignore (D.call db2 oid "g" [])) oids));
      Alcotest.(check int)
        (Printf.sprintf "sequences complete after reload at %d" partitions)
        5 (!fired - before))
    [ 1; 2; 4 ];
  Sys.remove tmp

(* ------------------------------------------------------------------ *)
(* Partitioned WAL                                                     *)
(* ------------------------------------------------------------------ *)

let test_wal_group_recover () =
  let dir = fresh_dir () in
  let fired = ref 0 in
  let mk config =
    let db = D.create_db ~config () in
    let b = D.define_class "c" in
    let b = D.field b "n" (Value.Int 0) in
    let b = D.method_ b ~kind:D.Updating "g" (fun _ _ _ -> Value.Unit) in
    let b =
      D.trigger_str b ~perpetual:true "t" ~event:"after g ; after g"
        ~action:(fun _ _ -> incr fired)
    in
    D.register_class db b;
    db
  in
  let wal_config =
    cfg ~backend:(`Sharded 2) ~partitions:2
      ~durability:
        (`Wal (Wal.config ~flush_ms:0 ~sync_on_flush:false ~snapshot_every:0 dir))
      ()
  in
  let db = mk wal_config in
  let oids =
    expect_ok
      (D.with_txn db (fun _ ->
           List.init 4 (fun _ ->
               let oid = D.create db "c" [] in
               D.activate db oid "t" [];
               oid)))
  in
  (* work on both members, including an abort and a clock advance *)
  expect_ok
    (D.with_txn db (fun _ ->
         List.iter
           (fun oid ->
             D.set_field db oid "n" (Value.Int oid);
             ignore (D.call db oid "g" []))
           oids));
  let tx = D.begin_txn db in
  ignore (D.call db (List.hd oids) "g" []);
  D.abort db tx;
  D.advance_clock db 50L;
  let shadow = D.image_bytes db in
  D.close_durability db;
  (* both member logs exist under the manifest *)
  Alcotest.(check bool) "manifest records the count" true
    (Wal.read_manifest dir = Some 2);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "member %d has a log" k)
        true
        (Sys.file_exists (Wal.member_dir dir k)))
    [ 0; 1 ];
  (* a fresh process: attach to the directory, recover, compare bytes *)
  let db2 = mk wal_config in
  D.recover db2;
  Alcotest.(check bool) "recovered bytes = shadow" true
    (String.equal (D.image_bytes db2) shadow);
  (* behaviorally alive across members: drive the recovered group and a
     single-engine oracle loaded from the shadow image through the same
     script; firings and bytes must agree *)
  let drive db =
    let before = !fired in
    expect_ok
      (D.with_txn db (fun _ ->
           List.iter
             (fun oid ->
               ignore (D.call db oid "g" []);
               ignore (D.call db oid "g" []))
             oids));
    (!fired - before, D.image_bytes db)
  in
  let recovered = drive db2 in
  D.close_durability db2;
  let oracle = mk (cfg ~partitions:1 ()) in
  let tmp = Filename.temp_file "ode_part" ".img" in
  let oc = open_out_bin tmp in
  output_string oc shadow;
  close_out oc;
  D.load oracle tmp;
  Sys.remove tmp;
  let expected = drive oracle in
  Alcotest.(check bool) "recovered group fires" true (fst recovered > 0);
  Alcotest.(check bool) "recovered group = single-engine oracle" true
    (recovered = expected);
  (* a mismatched partition count is refused at attach *)
  match
    D.create_db
      ~config:
        (cfg ~partitions:3 ~durability:(`Wal (Wal.config dir)) ())
      ()
  with
  | _ -> Alcotest.fail "expected the manifest mismatch to be refused"
  | exception D.Ode_error msg ->
    Alcotest.(check bool) "error names the counts" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Selector and config surface                                         *)
(* ------------------------------------------------------------------ *)

let test_env_selector () =
  let with_env v f =
    let old = Sys.getenv_opt "ODE_PARTITIONS" in
    Unix.putenv "ODE_PARTITIONS" v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "ODE_PARTITIONS" (Option.value ~default:"" old))
      f
  in
  with_env "3" (fun () ->
      Alcotest.(check int) "parsed" 3 (D.Config.of_env ()).D.Config.partitions);
  with_env "" (fun () ->
      Alcotest.(check int) "empty = default" 1
        (D.Config.of_env ()).D.Config.partitions);
  with_env "0" (fun () ->
      Alcotest.check_raises "zero rejected"
        (D.Ode_error "ODE_PARTITIONS: partition count must be >= 1 (got 0)")
        (fun () -> ignore (D.Config.of_env ())));
  with_env "zoo" (fun () ->
      Alcotest.check_raises "garbage rejected"
        (D.Ode_error "ODE_PARTITIONS: bad partition count \"zoo\"") (fun () ->
          ignore (D.Config.of_env ())))

let test_config_surface () =
  let db = D.create_db ~config:(cfg ~partitions:2 ()) () in
  Alcotest.(check int) "accessor" 2 (D.partitions db);
  let summary = D.config_summary db in
  let contains needle =
    let nl = String.length needle and hl = String.length summary in
    let rec go i = i + nl <= hl && (String.sub summary i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary mentions partitions" true
    (contains "partitions=2");
  let db1 = D.create_db ~config:(cfg ~partitions:1 ()) () in
  Alcotest.(check int) "single engine" 1 (D.partitions db1)

(* Empty post_many: a no-op at the engine layer too — still requires a
   transaction, posts nothing, fires nothing. *)
let test_empty_post_many () =
  let db = D.create_db ~config:(cfg ~partitions:2 ()) () in
  D.register_class db (D.define_class "c");
  (match D.post_many db [] with
  | _ -> Alcotest.fail "expected Ode_error outside a transaction"
  | exception D.Ode_error _ -> ());
  expect_ok
    (D.with_txn db (fun _ ->
         Alcotest.(check int) "no-op batch" 0 (D.post_many db [])))

let suite =
  [
    Alcotest.test_case "cross-partition sequence and choose-n" `Quick
      test_cross_partition_sequence;
    Alcotest.test_case "images are partition-transparent" `Quick
      test_cross_count_image;
    Alcotest.test_case "partitioned WAL recovers, refuses mismatch" `Quick
      test_wal_group_recover;
    Alcotest.test_case "ODE_PARTITIONS selector" `Quick test_env_selector;
    Alcotest.test_case "config surface" `Quick test_config_surface;
    Alcotest.test_case "empty post_many" `Quick test_empty_post_many;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ partitions_transparent; post_many_partitions_equal ]

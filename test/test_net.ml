(* The wire layer: protocol round-trips, framing corruption, the
   server against the in-process oracle, backpressure policies,
   connection-teardown hygiene and the Database.Config facade. *)

module D = Ode_odb.Database
module History = Ode_odb.History
module Value = Ode_base.Value
module Symbol = Ode_event.Symbol
module Json = Ode_net.Json
module Frame = Ode_net.Frame
module P = Ode_net.Protocol
module Server = Ode_net.Server
module Client = Ode_net.Client
module Odl = Ode_odl.Odl

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                     *)
(* ------------------------------------------------------------------ *)

(* One qualifying tick -> exactly one firing: the deterministic unit of
   the backpressure and leak tests. *)
let schema_simple =
  {|
  class probe {
    int n = 0;
    int marks = 0;
  public:
    probe() { activate T(); }
    update void tick(int q) { n = n + q; }
    update void mark() { marks = marks + 1; }
    read int marks_of() { return marks; }
  trigger:
    T() : perpetual after tick(q) && q > 5 ==> mark();
  };
  |}

(* Adds a sequence trigger so the merged-order equivalence test is
   sensitive to interleaving, not just to multisets of posts. *)
let schema_rich =
  {|
  class probe {
    int n = 0;
    int marks = 0;
  public:
    probe() { activate T(); activate S(); }
    update void tick(int q) { n = n + q; }
    update void mark() { marks = marks + 1; }
    read int marks_of() { return marks; }
  trigger:
    T() : perpetual after tick(q) && q > 5 ==> mark();
    S() : perpetual after tick; after tick; after tick ==> mark();
  };
  |}

let mk_config ?(window = 0) ?(outbox = 1024) ?(max_frame = Frame.max_frame_default)
    () =
  {
    D.Config.default with
    D.Config.serve =
      {
        D.Config.default_serve with
        D.Config.port = 0;
        batch_window_ms = window;
        outbox_bound = outbox;
        max_frame_bytes = max_frame;
      };
  }

(* The database is built by the caller (so it follows the CI leg's env
   backend selection); the server only gets the serve knobs. *)
let with_server ?window ?outbox ?max_frame ~db f =
  let srv = Server.create ~db ~config:(mk_config ?window ?outbox ?max_frame ()) () in
  Server.start srv;
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f srv (Server.port srv))

let ok = function
  | Ok j -> j
  | Error (code, msg) -> Alcotest.failf "server error [%s]: %s" code msg

let jint key j =
  match Json.member key j with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "reply carried no int %S: %s" key (Json.to_string j)

let tick_item oid q =
  {
    P.i_oid = oid;
    i_event = Symbol.Method (Symbol.After, "tick");
    i_args = [ Value.Int q ];
  }

let setup_probe client =
  ignore (ok (Client.request client (P.Schema schema_simple)));
  jint "oid" (ok (Client.request client (P.Create ("probe", []))))

let drain_firings ?(timeout_s = 1.0) client =
  let rec go acc =
    match Client.wait_firing ~timeout_s client with
    | Some f -> go (f :: acc)
    | None -> List.rev acc
  in
  go []

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "unexpected abort"

(* ------------------------------------------------------------------ *)
(* Protocol round-trips (qcheck)                                       *)
(* ------------------------------------------------------------------ *)

module Gen = struct
  open QCheck.Gen

  let value =
    oneof
      [
        return Value.Unit;
        map (fun b -> Value.Bool b) bool;
        map (fun n -> Value.Int n) int;
        (* quotients of ints exercise the repr printer without hitting
           NaN (structural equality breaks there; NaN gets its own
           deterministic test) *)
        map2 (fun a b -> Value.Float (float_of_int a /. float_of_int (1 + abs b))) int small_nat;
        map (fun s -> Value.String s) (string_size (int_range 0 12));
        map (fun n -> Value.Oid (abs n)) nat;
      ]

  let qual = oneofl [ Symbol.Before; Symbol.After ]
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8)

  let time_pattern =
    let field hi = opt (int_range 0 hi) in
    let* year = opt (int_range 1970 2100) in
    let* mon = field 12 in
    let* day = field 31 in
    let* hr = field 23 in
    let* min = field 59 in
    let* sec = field 59 in
    let+ ms = field 999 in
    { Symbol.year; mon; day; hr; min; sec; ms }

  let basic =
    oneof
      [
        oneofl [ Symbol.Create; Symbol.Delete; Symbol.Tbegin; Symbol.Tcomplete; Symbol.Tcommit ];
        map (fun q -> Symbol.Update q) qual;
        map (fun q -> Symbol.Read q) qual;
        map (fun q -> Symbol.Access q) qual;
        map (fun q -> Symbol.Tabort q) qual;
        map2 (fun q n -> Symbol.Method (q, n)) qual name;
        map (fun n -> Symbol.Time (Symbol.Every (Int64.of_int (1 + n)))) small_nat;
        map (fun n -> Symbol.Time (Symbol.After_period (Int64.of_int (1 + n)))) small_nat;
        map (fun p -> Symbol.Time (Symbol.At p)) time_pattern;
      ]

  let item =
    let* oid = nat in
    let* event = basic in
    let+ args = list_size (int_range 0 4) value in
    { P.i_oid = oid; i_event = event; i_args = args }

  let policy = oneofl [ P.Block; P.Drop ]

  let request =
    oneof
      [
        return P.Status;
        map (fun s -> P.Schema s) (string_size (int_range 0 40));
        map2 (fun n args -> P.Create (n, args)) name (list_size (int_range 0 3) value);
        map (fun it -> P.Post it) item;
        map (fun its -> P.Post_many its) (list_size (int_range 0 6) item);
        map3 (fun oid n args -> P.Call (oid, n, args)) nat name
          (list_size (int_range 0 3) value);
        oneofl [ P.Tbegin; P.Tcommit; P.Tabort; P.Unsubscribe; P.Shutdown ];
        map (fun n -> P.Advance_clock (Int64.of_int n)) nat;
        map (fun s -> P.Save s) (string_size (int_range 0 20));
        map (fun p -> P.Subscribe p) policy;
      ]

  let firing =
    let* t = name in
    let* c = name in
    let* oid = nat in
    let* at = nat in
    let+ txn = nat in
    { P.fg_trigger = t; fg_class = c; fg_oid = oid; fg_at = Int64.of_int at; fg_txn = txn }
end

let reparse what s =
  match Json.of_string s with
  | Ok j -> j
  | Error msg -> QCheck.Test.fail_reportf "%s produced bad JSON (%s): %s" what msg s

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"decode . encode = id (requests)"
    (QCheck.make ~print:(fun (id, r) -> Printf.sprintf "#%d %s" id (P.encode_request ~id r))
       QCheck.Gen.(pair nat Gen.request))
    (fun (id, req) ->
      let wire = P.encode_request ~id req in
      match P.decode_request (reparse "encode_request" wire) with
      | Ok (id', req') -> id' = id && req' = req
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s (%s)" msg wire)

let qcheck_msg_roundtrip =
  QCheck.Test.make ~count:300 ~name:"decode . encode = id (stream messages)"
    (QCheck.make QCheck.Gen.(oneof [
         map (fun f -> P.Firing f) Gen.firing;
         map (fun n -> P.Lagged (1 + n)) small_nat;
         map2 (fun id j -> P.Reply (id, P.R_ok j))
           nat (map (fun v -> P.encode_value v) Gen.value);
         map2 (fun id (c, m) -> P.Reply (id, P.R_error (c, m)))
           nat (pair Gen.name (string_size (int_range 0 20)));
       ]))
    (fun msg ->
      let wire =
        match msg with
        | P.Reply (id, resp) -> P.encode_reply ~id resp
        | P.Firing f -> P.encode_firing f
        | P.Lagged k -> P.encode_lagged k
      in
      match P.decode_msg (reparse "encode_msg" wire) with
      | Ok msg' -> msg' = msg
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s (%s)" e wire)

let test_nonfinite_floats () =
  List.iter
    (fun f ->
      match P.decode_value (P.encode_value (Value.Float f)) with
      | Ok (Value.Float f') ->
        Alcotest.(check bool)
          (Printf.sprintf "%h survives" f)
          true
          (Float.is_nan f' = Float.is_nan f && (Float.is_nan f || f' = f))
      | Ok v -> Alcotest.failf "decoded to %s" (Value.to_string v)
      | Error msg -> Alcotest.fail msg)
    [ Float.nan; Float.infinity; Float.neg_infinity; 1e-308; Float.pi; -0.0 ]

(* The parser must reject what the printer refuses (numerals that
   overflow to infinity) and bound its recursion, so no client-supplied
   document can break the parse/print round trip or blow the stack. *)
let test_json_limits () =
  (match Json.of_string "1e999" with
  | Error _ -> ()
  | Ok j -> Alcotest.failf "1e999 parsed to %s" (Json.to_string j));
  (match Json.of_string "[-1e999]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "-1e999 must be rejected");
  (* out-of-int-range but finite still degrades to float *)
  (match Json.of_string "123456789012345678901234567890" with
  | Ok (Json.Float _) -> ()
  | Ok j -> Alcotest.failf "big int parsed to %s" (Json.to_string j)
  | Error msg -> Alcotest.failf "finite overflow rejected: %s" msg);
  let deep_ok = String.make 100 '[' ^ "1" ^ String.make 100 ']' in
  (match Json.of_string deep_ok with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "depth 100 rejected: %s" msg);
  match Json.of_string (String.make 200_000 '[') with
  | Error _ -> ()  (* a parse error, crucially not Stack_overflow *)
  | Ok _ -> Alcotest.fail "nesting bomb must fail to parse"

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let test_decoder_incremental () =
  let payloads = [ "hello"; "{}"; String.make 1000 'x' ] in
  let stream = String.concat "" (List.map Frame.encode payloads) in
  let d = Frame.decoder () in
  let out = ref [] in
  String.iter
    (fun ch ->
      Frame.feed d (Bytes.make 1 ch) 1;
      let rec pop () =
        match Frame.next d with
        | Ok (Some p) ->
          out := p :: !out;
          pop ()
        | Ok None -> ()
        | Error (`Oversized _) -> Alcotest.fail "spurious oversize"
      in
      pop ())
    stream;
  Alcotest.(check (list string)) "byte-at-a-time framing" payloads (List.rev !out);
  Alcotest.(check int) "no leftover bytes" 0 (Frame.pending d)

let test_decoder_poison () =
  let header_of len =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int len);
    b
  in
  let d = Frame.decoder ~max:16 () in
  Frame.feed d (header_of 100) 4;
  (match Frame.next d with
  | Error (`Oversized 100) -> ()
  | _ -> Alcotest.fail "oversized length must poison the decoder");
  let d0 = Frame.decoder () in
  Frame.feed d0 (header_of 0) 4;
  match Frame.next d0 with
  | Error (`Oversized 0) -> ()
  | _ -> Alcotest.fail "zero length must poison the decoder"

let test_read_frame_errors () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let frame = Frame.encode "abcdefgh" in
  (* a whole frame, then a torn one *)
  ignore (Unix.write_substring a frame 0 (String.length frame));
  ignore (Unix.write_substring a frame 0 (String.length frame - 3));
  Unix.close a;
  (match Frame.read_frame b with
  | Ok "abcdefgh" -> ()
  | _ -> Alcotest.fail "first frame should decode");
  (match Frame.read_frame b with
  | Error (Frame.Truncated 3) -> ()
  | _ -> Alcotest.fail "torn tail should report Truncated 3");
  Unix.close b;
  let c, dd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close c;
  (match Frame.read_frame dd with
  | Error Frame.Eof -> ()
  | _ -> Alcotest.fail "clean close between frames is Eof");
  Unix.close dd

(* ------------------------------------------------------------------ *)
(* Raw socket helpers (frames without the Client's request pairing)    *)
(* ------------------------------------------------------------------ *)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let raw_send fd id req = Frame.write_frame fd (P.encode_request ~id req)

let raw_recv fd =
  match Frame.read_frame fd with
  | Error e ->
    Alcotest.failf "read_frame: %s"
      (match e with
      | Frame.Eof -> "eof"
      | Frame.Truncated n -> Printf.sprintf "truncated (%d owed)" n
      | Frame.Oversized n -> Printf.sprintf "oversized (%d)" n)
  | Ok payload -> (
    match Json.of_string payload with
    | Error msg -> Alcotest.failf "bad JSON from server: %s" msg
    | Ok j -> (
      match P.decode_msg j with
      | Ok m -> m
      | Error msg -> Alcotest.failf "bad message from server: %s" msg))

(* ------------------------------------------------------------------ *)
(* Wire equivalence against the in-process oracle                      *)
(* ------------------------------------------------------------------ *)

(* Two concurrent wire clients post interleaved batches; the in-process
   oracle replays the server's merged order (recovered from the §9
   object history) batch by batch (batch boundaries recovered from the
   replies). The firing streams must agree event for event — including
   transaction ids — and the state fingerprints must be equal bytes. *)
let test_wire_equivalence () =
  let db_s = D.create_db () in
  ignore (Odl.load_schema db_s schema_rich);
  D.enable_history db_s ~limit:100_000;
  let db_o = D.create_db () in
  ignore (Odl.load_schema db_o schema_rich);
  D.enable_history db_o ~limit:100_000;
  let oracle_firings = ref [] in
  ignore
    (D.subscribe_firings db_o (fun f -> oracle_firings := f :: !oracle_firings));
  let wire_firings =
    with_server ~window:30 ~db:db_s (fun _srv port ->
        let sub = Client.connect ~port () in
        Fun.protect
          ~finally:(fun () -> Client.close sub)
          (fun () ->
            let oid = jint "oid" (ok (Client.request sub (P.Create ("probe", [])))) in
            ignore (ok (Client.request sub (P.Subscribe P.Block)));
            let oid_o =
              expect_ok (D.with_txn db_o (fun _ -> D.create db_o "probe" []))
            in
            Alcotest.(check int) "oids line up" oid oid_o;
            (* two raw clients, requests written without awaiting
               replies, so their posts genuinely coalesce *)
            let a = raw_connect port and b = raw_connect port in
            let it = tick_item oid in
            raw_send a 1 (P.Post_many [ it 9; it 1 ]);
            raw_send b 1 (P.Post_many [ it 7 ]);
            raw_send a 2 (P.Post (it 2));
            raw_send b 2 (P.Post_many [ it 8; it 8; it 1 ]);
            raw_send a 3 (P.Post (it 6));
            raw_send b 3 (P.Post (it 3));
            let replies fd n =
              List.init n (fun _ ->
                  match raw_recv fd with
                  | P.Reply (_, P.R_ok j) -> j
                  | P.Reply (_, P.R_error (c, m)) ->
                    Alcotest.failf "post failed [%s]: %s" c m
                  | _ -> Alcotest.fail "poster got a stream message")
            in
            let ra = replies a 3 in
            let rb = replies b 3 in
            Unix.close a;
            Unix.close b;
            (* batch sizes by serial, from the replies *)
            let tally = Hashtbl.create 8 in
            List.iter
              (fun j ->
                let serial = jint "batch" j and q = jint "queued" j in
                Hashtbl.replace tally serial
                  (q + Option.value (Hashtbl.find_opt tally serial) ~default:0))
              (ra @ rb);
            let serials =
              List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tally [])
            in
            (* merged arrival order, from the server's object history *)
            let merged =
              List.filter_map
                (fun r ->
                  match r.History.h_occurrence.Symbol.basic with
                  | Symbol.Method (Symbol.After, "tick") as basic ->
                    Some (oid, basic, r.History.h_occurrence.Symbol.args)
                  | _ -> None)
                (D.object_history db_s oid)
            in
            Alcotest.(check int) "history saw every post" 9 (List.length merged);
            (* replay per batch on the oracle *)
            let rest = ref merged in
            List.iter
              (fun serial ->
                let n = Hashtbl.find tally serial in
                let rec take k acc l =
                  if k = 0 then (List.rev acc, l)
                  else
                    match l with
                    | [] -> Alcotest.fail "history shorter than batches"
                    | x :: tl -> take (k - 1) (x :: acc) tl
                in
                let batch, tl = take n [] !rest in
                rest := tl;
                expect_ok
                  (D.with_txn db_o (fun _ -> ignore (D.post_many db_o batch))))
              serials;
            Alcotest.(check int) "batches covered the history" 0 (List.length !rest);
            drain_firings sub))
  in
  let oracle = List.rev !oracle_firings in
  Alcotest.(check int)
    "firing counts agree" (List.length oracle) (List.length wire_firings);
  Alcotest.(check bool) "some firings happened" true (List.length oracle > 0);
  List.iter2
    (fun (w : P.firing) (o : D.firing) ->
      Alcotest.(check string) "trigger" o.D.f_trigger w.P.fg_trigger;
      Alcotest.(check string) "class" o.D.f_class w.P.fg_class;
      Alcotest.(check int) "oid" o.D.f_oid w.P.fg_oid;
      Alcotest.(check int64) "at" o.D.f_at w.P.fg_at;
      Alcotest.(check int) "txn" o.D.f_txn w.P.fg_txn)
    wire_firings oracle;
  Alcotest.(check bool)
    "state fingerprints equal" true
    (D.image_bytes db_s = D.image_bytes db_o)

(* ------------------------------------------------------------------ *)
(* Backpressure                                                        *)
(* ------------------------------------------------------------------ *)

(* One big batch floods the outbox within a single flush, where no
   writes can interleave: with bound 4, exactly 4 firings queue and 96
   drop; the lagged count rides ahead of the next firing that finds
   room. *)
let test_drop_policy () =
  let db = D.create_db () in
  with_server ~outbox:4 ~db (fun srv port ->
      let sub = Client.connect ~port () in
      let poster = Client.connect ~port () in
      Fun.protect
        ~finally:(fun () ->
          Client.close sub;
          Client.close poster)
        (fun () ->
          let oid = setup_probe sub in
          ignore (ok (Client.request sub (P.Subscribe P.Drop)));
          let j =
            ok
              (Client.request poster
                 (P.Post_many (List.init 100 (fun _ -> tick_item oid 9))))
          in
          Alcotest.(check int) "100 firings in the batch" 100 (jint "firings" j);
          ignore (ok (Client.request poster (P.Post (tick_item oid 9))));
          let seen = drain_firings sub in
          Alcotest.(check int) "bound + reopened firing delivered" 5 (List.length seen);
          Alcotest.(check int) "lagged count reported" 96 (Client.lagged_total sub);
          Alcotest.(check int) "server counted the drops" 96 (Server.stats srv).Server.s_dropped))

(* Block policy is lossless even when the stream far exceeds both the
   outbox bound and the socket buffer: the server stalls inside the
   posting pipeline until this reader catches up. The poster must live
   on its own thread — its reply only arrives once the subscriber
   drains. *)
let test_block_policy () =
  let db = D.create_db () in
  with_server ~outbox:4 ~db (fun srv port ->
      let sub = Client.connect ~port () in
      let poster = Client.connect ~port () in
      Fun.protect
        ~finally:(fun () ->
          Client.close sub;
          Client.close poster)
        (fun () ->
          let total = 2000 in
          let oid = setup_probe sub in
          ignore (ok (Client.request sub (P.Subscribe P.Block)));
          let fired = ref (-1) in
          let th =
            Thread.create
              (fun () ->
                let j =
                  ok
                    (Client.request poster
                       (P.Post_many (List.init total (fun _ -> tick_item oid 9))))
                in
                fired := jint "firings" j)
              ()
          in
          let seen = List.length (drain_firings sub) in
          Thread.join th;
          Alcotest.(check int) "every firing delivered" total seen;
          Alcotest.(check int) "batch reply confirms" total !fired;
          Alcotest.(check int) "nothing lagged" 0 (Client.lagged_total sub);
          Alcotest.(check int) "nothing dropped" 0 (Server.stats srv).Server.s_dropped))

(* ------------------------------------------------------------------ *)
(* Teardown hygiene                                                    *)
(* ------------------------------------------------------------------ *)

let await ?(timeout_s = 5.0) msg pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.fail msg
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let test_disconnect_releases_everything () =
  let db = D.create_db () in
  with_server ~db (fun srv port ->
      let c0 = Client.connect ~port () in
      let oid = setup_probe c0 in
      (* warm the detection state: the first firing legitimately retains
         the trigger's collected §9 binding, which is state growth from
         posting, not from the connection *)
      ignore (ok (Client.request c0 (P.Post (tick_item oid 9))));
      Client.close c0;
      await "first client swept" (fun () -> (Server.stats srv).Server.s_connections = 0);
      let base_subs = D.subscriber_count db in
      let base_bytes = (D.stats db).D.state_bytes in
      for _ = 1 to 10 do
        let c = Client.connect ~port () in
        ignore (ok (Client.request c (P.Subscribe P.Block)));
        ignore (ok (Client.request c (P.Post (tick_item oid 9))));
        (match Client.wait_firing c with
        | Some _ -> ()
        | None -> Alcotest.fail "subscriber saw no firing");
        ignore (ok (Client.request c P.Tbegin));
        Client.close c;
        await "subscription released on disconnect" (fun () ->
            D.subscriber_count db = base_subs)
      done;
      Alcotest.(check int) "subscriber count flat" base_subs (D.subscriber_count db);
      Alcotest.(check int)
        "state bytes flat" base_bytes (D.stats db).D.state_bytes)

(* ------------------------------------------------------------------ *)
(* Corruption over the wire                                            *)
(* ------------------------------------------------------------------ *)

let test_wire_corruption () =
  let db = D.create_db () in
  with_server ~max_frame:1024 ~db (fun _srv port ->
      (* unparseable payload: an error reply, and the connection lives *)
      let fd = raw_connect port in
      Frame.write_frame fd "this is not json";
      (match raw_recv fd with
      | P.Reply (-1, P.R_error (code, _)) ->
        Alcotest.(check string) "parse error code" P.err_parse code
      | _ -> Alcotest.fail "expected a parse error reply");
      (* well-formed JSON, bad verb: bad_request, with the id echoed *)
      Frame.write_frame fd {|{"id":5,"verb":"frobnicate"}|};
      (match raw_recv fd with
      | P.Reply (5, P.R_error (code, _)) ->
        Alcotest.(check string) "bad_request code" P.err_bad_request code
      | _ -> Alcotest.fail "expected a bad_request reply for id 5");
      (* a numeral that overflows to infinity: parse error, and the
         connection lives (this used to raise at re-encode inside the
         error path and kill the server) *)
      Frame.write_frame fd {|{"id":6,"verb":"post","oid":0,"event":{"kind":"create"},"args":[[1e999]]}|};
      (match raw_recv fd with
      | P.Reply (_, P.R_error (code, _)) ->
        Alcotest.(check string) "overflow numeral is a parse error" P.err_parse code
      | _ -> Alcotest.fail "expected a parse error for 1e999");
      (* a nesting bomb inside the frame limit: parse error, not a
         Stack_overflow through the select loop *)
      Frame.write_frame fd (String.make 600 '[');
      (match raw_recv fd with
      | P.Reply (-1, P.R_error (code, _)) ->
        Alcotest.(check string) "nesting bomb is a parse error" P.err_parse code
      | _ -> Alcotest.fail "expected a parse error for the nesting bomb");
      raw_send fd 7 P.Status;
      (match raw_recv fd with
      | P.Reply (7, P.R_ok _) -> ()
      | _ -> Alcotest.fail "connection must survive payload-level garbage");
      Unix.close fd;
      (* an oversized declared length is unrecoverable: error, then the
         server hangs up *)
      let fd2 = raw_connect port in
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 5000l;
      ignore (Unix.write fd2 hdr 0 4);
      (match raw_recv fd2 with
      | P.Reply (-1, P.R_error (code, _)) ->
        Alcotest.(check string) "oversize reported as parse" P.err_parse code
      | _ -> Alcotest.fail "expected an oversize error reply");
      (match Frame.read_frame fd2 with
      | Error Frame.Eof -> ()
      | _ -> Alcotest.fail "server must close after an oversized frame");
      Unix.close fd2;
      (* a peer dying mid-frame must not hurt anyone else *)
      let fd3 = raw_connect port in
      let f = Frame.encode (P.encode_request ~id:1 P.Status) in
      ignore (Unix.write_substring fd3 f 0 (String.length f - 3));
      Unix.close fd3;
      let c = Client.connect ~port () in
      ignore (ok (Client.request c P.Status));
      Client.close c)

(* A trigger whose action passes the collected event parameter into an
   int-typed method: posting a string arg makes the action itself blow
   up mid-[post_many], after decode succeeded. *)
let schema_typed =
  {|
  class tprobe {
    int acc = 0;
  public:
    tprobe() { activate TT(); }
    update void tick(int q) { }
    update void bump(int x) { acc = acc + x; }
    read int acc_of() { return acc; }
  trigger:
    TT() : perpetual after tick(q) ==> bump(q);
  };
  |}

(* A failing trigger action on the transaction-free path runs inside
   flush_batch, not inside a per-request handler: the contributing
   client must get an error reply (not silence) and the server must
   keep serving — previously the exception escaped the select loop and
   killed the process. *)
let test_action_failure_survives () =
  let db = D.create_db () in
  with_server ~db (fun srv port ->
      let c = Client.connect ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ignore (ok (Client.request c (P.Schema schema_typed)));
          let oid = jint "oid" (ok (Client.request c (P.Create ("tprobe", [])))) in
          let tick v =
            {
              P.i_oid = oid;
              i_event = Symbol.Method (Symbol.After, "tick");
              i_args = [ v ];
            }
          in
          (match Client.request c (P.Post (tick (Value.String "boom"))) with
          | Error (code, _) ->
            Alcotest.(check string) "action failure reported" P.err_ode code
          | Ok j -> Alcotest.failf "bad-typed post accepted: %s" (Json.to_string j));
          (* the failed batch answered its waiter and the loop lives:
             a well-typed post still goes through and acts *)
          let j = ok (Client.request c (P.Post (tick (Value.Int 4)))) in
          Alcotest.(check int) "clean post fires" 1 (jint "firings" j);
          Alcotest.(check int)
            "action applied" 4
            (jint "result" (ok (Client.request c (P.Call (oid, "acc_of", [])))));
          Alcotest.(check int)
            "server still reachable" 1 (Server.stats srv).Server.s_connections))

(* The host argument accepts names, not just dotted quads. *)
let test_hostname_connect () =
  let db = D.create_db () in
  with_server ~db (fun _srv port ->
      let c = Client.connect ~host:"localhost" ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () -> ignore (ok (Client.request c P.Status))));
  match Client.resolve_host "no-such-host.invalid" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bogus hostname must raise a descriptive Failure"

(* ------------------------------------------------------------------ *)
(* Transactions, clock and save over the wire                          *)
(* ------------------------------------------------------------------ *)

let test_wire_txn () =
  let db = D.create_db () in
  with_server ~db (fun _srv port ->
      let c = Client.connect ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let oid = setup_probe c in
          let marks () =
            jint "result" (ok (Client.request c (P.Call (oid, "marks_of", []))))
          in
          Alcotest.(check int) "clean start" 0 (marks ());
          (* a posted trigger action inside an explicit txn, then undo *)
          ignore (ok (Client.request c P.Tbegin));
          let j = ok (Client.request c (P.Post (tick_item oid 9))) in
          Alcotest.(check int) "in-txn post fired" 1 (jint "firings" j);
          Alcotest.(check int) "action visible inside txn" 1 (marks ());
          ignore (ok (Client.request c P.Tabort));
          Alcotest.(check int) "abort undid the action" 0 (marks ());
          (* same again, committed *)
          ignore (ok (Client.request c P.Tbegin));
          ignore (ok (Client.request c (P.Post (tick_item oid 9))));
          ignore (ok (Client.request c P.Tcommit));
          Alcotest.(check int) "commit kept the action" 1 (marks ());
          (* state errors *)
          (match Client.request c P.Tcommit with
          | Error (code, _) -> Alcotest.(check string) "commit w/o txn" P.err_state code
          | Ok _ -> Alcotest.fail "tcommit without a txn must fail");
          ignore (ok (Client.request c P.Tbegin));
          (match Client.request c P.Tbegin with
          | Error (code, _) -> Alcotest.(check string) "nested tbegin" P.err_state code
          | Ok _ -> Alcotest.fail "nested tbegin must fail");
          ignore (ok (Client.request c P.Tabort));
          (* clock and save *)
          let j = ok (Client.request c (P.Advance_clock 250L)) in
          Alcotest.(check int) "clock advanced" 250 (jint "now" j);
          let path = Filename.temp_file "odes-test" ".ode" in
          ignore (ok (Client.request c (P.Save path)));
          Alcotest.(check bool)
            "save wrote an image" true
            ((Unix.stat path).Unix.st_size > 0);
          Sys.remove path))

(* ------------------------------------------------------------------ *)
(* The Config facade                                                   *)
(* ------------------------------------------------------------------ *)

let with_env key v f =
  let old = Sys.getenv_opt key in
  Unix.putenv key v;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

let test_config_of_env () =
  with_env "ODE_POST_DOMAINS" "3" (fun () ->
      let c = D.Config.of_env () in
      Alcotest.(check int) "domains" 3 c.D.Config.post_domains;
      Alcotest.(check bool) "clamp off" false c.D.Config.domain_clamp;
      Alcotest.(check int) "threshold zero" 0 c.D.Config.parallel_threshold);
  with_env "ODE_POST_DOMAINS" "" (fun () ->
      let c = D.Config.of_env () in
      Alcotest.(check int)
        "empty means unset" D.Config.default.D.Config.post_domains
        c.D.Config.post_domains);
  with_env "ODE_POST_DOMAINS" "0" (fun () ->
      Alcotest.check_raises "zero domains rejected"
        (D.Ode_error "ODE_POST_DOMAINS: domain count must be >= 1 (got 0)")
        (fun () -> ignore (D.Config.of_env ())));
  with_env "ODE_POST_DOMAINS" "many" (fun () ->
      Alcotest.check_raises "garbage rejected"
        (D.Ode_error "ODE_POST_DOMAINS: bad domain count \"many\"") (fun () ->
          ignore (D.Config.of_env ())));
  with_env "ODE_DURABILITY" "paper-tape" (fun () ->
      Alcotest.check_raises "unknown durability rejected"
        (D.Ode_error "ODE_DURABILITY: unknown backend \"paper-tape\"") (fun () ->
          ignore (D.Config.of_env ())))

(* An empty [post_many] is a true no-op: answered on the spot. Enrolled
   as a zero-item waiter it would sleep forever ([due] watches
   [b_n > 0]); routed through the flush it would spend a server
   transaction — and a WAL batch record — on posting nothing. *)
let test_empty_post_many () =
  let db = D.create_db () in
  with_server ~window:400 ~db (fun _srv port ->
      let c = Client.connect ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let oid = setup_probe c in
          let batches () =
            match Json.member "server" (ok (Client.request c P.Status)) with
            | Some server -> jint "batches" server
            | None -> Alcotest.fail "status carried no server object"
          in
          let before = batches () in
          let t0 = Unix.gettimeofday () in
          let r = ok (Client.request c (P.Post_many [])) in
          let dt = Unix.gettimeofday () -. t0 in
          Alcotest.(check int) "joined no batch" 0 (jint "batch" r);
          Alcotest.(check int) "queued nothing" 0 (jint "queued" r);
          Alcotest.(check int) "fired nothing" 0 (jint "firings" r);
          Alcotest.(check bool) "answered without waiting for the window" true
            (dt < 0.35);
          Alcotest.(check int) "consumed no batch serial" before (batches ());
          (* the coalescer still works after the no-op *)
          let r = ok (Client.request c (P.Post (tick_item oid 9))) in
          Alcotest.(check int) "later posts still flush" 1 (jint "queued" r)))

(* Drive the same scenario through a db built four ways; the canonical
   fingerprint must not notice how the db was configured into the same
   logical state. *)
let test_config_equivalence () =
  let drive db =
    ignore (Odl.load_schema db schema_simple);
    let oid = expect_ok (D.with_txn db (fun _ -> D.create db "probe" [])) in
    expect_ok
      (D.with_txn db (fun _ ->
           ignore
             (D.post_many db
                (List.init 7 (fun i ->
                     (oid, Symbol.Method (Symbol.After, "tick"), [ Value.Int i ]))))));
    D.image_bytes db
  in
  let bare = drive (D.create_db ()) in
  let via_env_config = drive (D.create_db ~config:(D.Config.of_env ()) ()) in
  let via_default = drive (D.create_db ~config:D.Config.default ()) in
  Alcotest.(check bool)
    "create_db () = create_db ~config:(of_env ())" true (bare = via_env_config);
  Alcotest.(check bool)
    "explicit default config converges" true (bare = via_default)

let test_config_overrides () =
  let c = { D.Config.default with D.Config.start_time = 5L } in
  let db = D.create_db ~config:c () in
  Alcotest.(check int64) "config start_time" 5L (D.now db);
  let db2 = D.create_db ~config:c ~start_time:9L () in
  Alcotest.(check int64) "optional shim wins over config" 9L (D.now db2);
  let summary = D.config_summary (D.create_db ~config:D.Config.default ()) in
  let contains needle =
    let nl = String.length needle and hl = String.length summary in
    let rec go i = i + nl <= hl && (String.sub summary i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "summary mentions %s" needle)
        true (contains needle))
    [ "backend=heap"; "durability=image"; "post_domains=1"; "posting_kernel=on" ]

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "non-finite float encoding" `Quick test_nonfinite_floats;
    Alcotest.test_case "json rejects overflow and nesting bombs" `Quick
      test_json_limits;
    Alcotest.test_case "incremental frame decoding" `Quick test_decoder_incremental;
    Alcotest.test_case "bad lengths poison the decoder" `Quick test_decoder_poison;
    Alcotest.test_case "blocking reads report torn frames" `Quick test_read_frame_errors;
    Alcotest.test_case "wire run = in-process oracle" `Quick test_wire_equivalence;
    Alcotest.test_case "drop policy counts what it sheds" `Quick test_drop_policy;
    Alcotest.test_case "block policy is lossless" `Quick test_block_policy;
    Alcotest.test_case "disconnect releases subscription, txn, outbox" `Quick
      test_disconnect_releases_everything;
    Alcotest.test_case "corrupt frames: survive or hang up per contract" `Quick
      test_wire_corruption;
    Alcotest.test_case "failing trigger action: error reply, server lives" `Quick
      test_action_failure_survives;
    Alcotest.test_case "hostnames resolve" `Quick test_hostname_connect;
    Alcotest.test_case "transactions, clock and save over the wire" `Quick
      test_wire_txn;
    Alcotest.test_case "empty post_many is an immediate no-op" `Quick
      test_empty_post_many;
    Alcotest.test_case "Config.of_env parses and rejects" `Quick test_config_of_env;
    Alcotest.test_case "config paths converge bit-identically" `Quick
      test_config_equivalence;
    Alcotest.test_case "optional shims override config" `Quick test_config_overrides;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ qcheck_request_roundtrip; qcheck_msg_roundtrip ]

(* Equivalence of the three posting paths.

   [Database.set_dispatch_index] (default true) makes [post]/[post_db]
   consult the per-class / per-database dispatch index and touch only
   the triggers whose alphabet can contain the posted basic event;
   switching it off restores the pre-index path that snapshots and
   classifies {e every} activation. On top of the index,
   [Database.set_posting_kernel] (default true) selects the compiled
   kernel — per-class candidate rows, packed classification codes,
   flat-table stepping over the SoA detection state — over the legacy
   indexed path it replaced. All three must be observably identical:
   same firings, same collected §9 bindings, same witnesses, same
   automaton states, same activation flags — on random schemas (masked
   composite events, one-shot/perpetual, committed-mode,
   witness-tracking triggers) under random transaction scripts with
   commits and aborts.

   [kernel_codes_match_semantics] additionally pins the kernel's
   classify/step primitives ([Detector.classify_code] / [post_code] /
   [post_code_slot]) directly against the §4 denotational semantics, so
   the engine-level property cannot pass by both paths sharing a broken
   detector. *)

open Ode_odb
open Ode_event
module D = Database
module Value = Ode_base.Value

type op =
  | Call_f
  | Call_g0
  | Call_g1 of int
  | Set_cm of int * bool
  | Reactivate of int
  | New_obj

type script = { ops : op list; commit : bool }

type case = {
  (* event, perpetual, committed-mode, witnesses *)
  triggers : (Expr.t * bool * bool * bool) list;
  scripts : script list;
}

let trigger_names case = List.mapi (fun i _ -> Printf.sprintf "t%d" i) case.triggers

(* Build the schema, run every script, and summarise everything the two
   posting paths could disagree on. Firings and the action log are
   sorted: the reference path iterates a [Hashtbl] snapshot, so its
   {e order} of same-occurrence firings is unspecified (the indexed path
   fixed it to declaration order). *)
let run ?(use_kernel = true) ~use_index case =
  let log = ref [] in
  let db = D.create_db () in
  D.set_dispatch_index db use_index;
  D.set_posting_kernel db use_kernel;
  let firings_log = ref [] in
  let _sub = D.subscribe_firings db (fun f -> firings_log := f :: !firings_log) in
  (* one database-scope trigger so [post_db]'s index is exercised too *)
  D.db_trigger_str db ~perpetual:true "census" ~event:"choose 2 (after create)"
    ~action:(fun _ ctx -> log := ("census", [ ("oid", Value.Int ctx.D.fc_oid) ], None) :: !log);
  D.activate_db_trigger db "census" [];
  let names = trigger_names case in
  let b = D.define_class "c" in
  let b = D.field b "cm0" (Value.Bool true) in
  let b = D.field b "cm1" (Value.Bool true) in
  let b = D.field b "cm2" (Value.Bool true) in
  let b = D.method_ b ~kind:D.Read_only "f" (fun _ _ _ -> Value.Unit) in
  let b = D.method_ b ~kind:D.Updating "g" (fun _ _ _ -> Value.Unit) in
  let b =
    List.fold_left2
      (fun b name (event, perpetual, committed, witnesses) ->
        let mode = if committed then Detector.Committed else Detector.Full_history in
        D.trigger b ~perpetual ~mode ~witnesses name ~event ~action:(fun _ ctx ->
            log :=
              (name, List.sort compare ctx.D.fc_collected, ctx.D.fc_witnesses)
              :: !log))
      b names case.triggers
  in
  D.register_class db b;
  let oid =
    match
      D.with_txn db (fun _ ->
          let oid = D.create db "c" [] in
          List.iter (fun n -> D.activate db oid n []) names;
          oid)
    with
    | Ok oid -> oid
    | Error `Aborted -> Alcotest.fail "setup transaction aborted"
  in
  List.iter
    (fun s ->
      let tx = D.begin_txn db in
      List.iter
        (fun op ->
          match op with
          | Call_f -> ignore (D.call db oid "f" [])
          | Call_g0 -> ignore (D.call db oid "g" [])
          | Call_g1 x -> ignore (D.call db oid "g" [ Value.Int x ])
          | Set_cm (i, v) ->
            D.set_field db oid (Printf.sprintf "cm%d" (i mod 3)) (Value.Bool v)
          | Reactivate i ->
            D.activate db oid (List.nth names (i mod List.length names)) []
          | New_obj -> ignore (D.create db "c" []))
        s.ops;
      if s.commit then ignore (D.commit db tx) else D.abort db tx)
    case.scripts;
  let firings =
    List.map
      (fun (f : D.firing) -> (f.D.f_trigger, f.D.f_oid, f.D.f_txn))
      (List.rev !firings_log)
  in
  let states =
    List.map (fun n -> (n, D.trigger_state db oid n, D.is_active db oid n)) names
  in
  (List.sort compare firings, List.sort compare !log, states)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_trigger =
  let open QCheck.Gen in
  let* e = Gen.gen_surface_masked ~max_size:6 () in
  let* perpetual = bool in
  let* committed = bool in
  let* witnesses = bool in
  return (e, perpetual, committed, witnesses)

let gen_op =
  let open QCheck.Gen in
  frequency
    [
      (3, return Call_f);
      (2, return Call_g0);
      (4, map (fun x -> Call_g1 x) (int_range (-2) 10));
      (1, map2 (fun i v -> Set_cm (i, v)) (int_bound 2) bool);
      (1, map (fun i -> Reactivate i) (int_bound 7));
      (1, return New_obj);
    ]

let gen_script =
  let open QCheck.Gen in
  map2 (fun ops commit -> { ops; commit }) (list_size (int_range 1 6) gen_op) bool

let gen_case =
  let open QCheck.Gen in
  map2
    (fun triggers scripts -> { triggers; scripts })
    (list_size (int_range 1 4) gen_trigger)
    (list_size (int_range 1 6) gen_script)

let pp_op ppf = function
  | Call_f -> Fmt.pf ppf "f()"
  | Call_g0 -> Fmt.pf ppf "g()"
  | Call_g1 x -> Fmt.pf ppf "g(%d)" x
  | Set_cm (i, v) -> Fmt.pf ppf "cm%d := %b" (i mod 3) v
  | Reactivate i -> Fmt.pf ppf "reactivate %d" i
  | New_obj -> Fmt.pf ppf "new"

let print_case case =
  Fmt.str "@[<v>%a@,%a@]"
    Fmt.(
      list (fun ppf (e, p, c, w) ->
          Fmt.pf ppf "trigger%s%s%s: %a"
            (if p then " perpetual" else "")
            (if c then " committed" else "")
            (if w then " witnesses" else "")
            Expr.pp e))
    case.triggers
    Fmt.(
      list (fun ppf s ->
          Fmt.pf ppf "%s [%a]"
            (if s.commit then "commit" else "abort")
            (list ~sep:(any "; ") pp_op) s.ops))
    case.scripts

(* ------------------------------------------------------------------ *)
(* Properties and directed tests                                       *)
(* ------------------------------------------------------------------ *)

let compiles (e, _, committed, _) =
  let mode = if committed then Detector.Committed else Detector.Full_history in
  match Detector.make ~mode e with
  | exception Invalid_argument _ -> false (* state-limit blowup: skip *)
  | _ -> true

let index_equals_scan =
  QCheck.Test.make ~count:80 ~name:"dispatch index = brute-force scan"
    (QCheck.make ~print:print_case gen_case)
    (fun case ->
      QCheck.assume (List.for_all compiles case.triggers);
      run ~use_index:true case = run ~use_index:false case)

(* Three-way: the compiled kernel, the legacy indexed path it replaced,
   and the brute-force scan must agree on every observable. *)
let kernel_equals_legacy_equals_scan =
  QCheck.Test.make ~count:80 ~name:"posting kernel = legacy index = scan"
    (QCheck.make ~print:print_case gen_case)
    (fun case ->
      QCheck.assume (List.for_all compiles case.triggers);
      let k = run ~use_kernel:true ~use_index:true case in
      k = run ~use_kernel:false ~use_index:true case
      && k = run ~use_kernel:false ~use_index:false case)

(* The kernel's own primitives against the §4 reference semantics: for a
   random surface expression and occurrence stream, classify each
   occurrence to a packed code, step the detector by code (both the
   word-vector variant and — when the detector has a flat table — the
   one-word SoA slot variant), and compare the accept stream with
   [Semantics.eval] over the classified, filtered symbol history. Mirrors
   [test_pipeline]'s detector property but through the kernel entry
   points, so a discrepancy between [post] and [post_code]/[post_code_slot]
   cannot hide behind a shared implementation. *)
let kernel_codes_match_semantics =
  let env = Ode_event.Mask.empty_env in
  QCheck.Test.make ~count:300 ~name:"kernel classify/step codes = semantics"
    (QCheck.make
       ~print:(fun (e, occs) ->
         Fmt.str "%a on %d occurrences" Expr.pp e (List.length occs))
       QCheck.Gen.(
         let* e = Gen.gen_surface_expr ~max_size:8 () in
         let* occs = list_size (int_bound 30) Gen.gen_occurrence in
         return (e, occs)))
    (fun (e, occs) ->
      match Detector.make e with
      | exception Invalid_argument _ -> true (* state-limit: skip *)
      | det ->
        let codes = List.map (Detector.classify_code det ~env) occs in
        let state = Detector.initial det in
        let fired = List.map (Detector.post_code det state ~env) codes in
        (if Detector.has_flat det then begin
           let w = Detector.n_state_words det in
           let cells = Array.make (w + 2) 0 in
           Detector.write_initial det cells 1;
           let slot_fired =
             List.map (Detector.post_code_slot det cells 1 ~env) codes
           in
           if slot_fired <> fired then
             QCheck.Test.fail_report "SoA slot stepping diverged from word vector";
           if Array.sub cells 1 w <> state then
             QCheck.Test.fail_report
               "slot state diverged from word-vector state";
           if cells.(0) <> 0 || cells.(w + 1) <> 0 then
             QCheck.Test.fail_report "slot stepping clobbered neighbouring cells"
         end);
        (* reference: classify, drop non-events, evaluate denotationally *)
        let alphabet, lowered, _ = Rewrite.build e in
        let classified =
          List.map (fun occ -> Rewrite.classify alphabet ~env occ) occs
        in
        let kept =
          List.filter (fun s -> s <> Rewrite.other alphabet) classified
        in
        let labels = Semantics.eval lowered (Array.of_list kept) in
        let expected = ref [] in
        let j = ref 0 in
        List.iter
          (fun s ->
            if s = Rewrite.other alphabet then expected := false :: !expected
            else begin
              expected := labels.(!j) :: !expected;
              incr j
            end)
          classified;
        fired = List.rev !expected)

(* Multi-level automata through the flat tables: wrap random
   subexpressions in composite masks (each mask a [cm<i> = true] lookup
   the environment answers differently at different positions of the
   stream), then step the same code stream through the word-vector path
   and the SoA slot path. Both must agree on every firing and end in
   identical state words — and every such expression must be
   kernel-eligible, masks, counting and nesting included. *)
let masked_slots_match_words =
  QCheck.Test.make ~count:300
    ~name:"multi-level slot stepping = word stepping under varying masks"
    (QCheck.make
       ~print:(fun (e, steps) ->
         Fmt.str "%a on %d occurrences" Expr.pp e (List.length steps))
       QCheck.Gen.(
         let* e = Gen.gen_surface_masked ~max_size:8 () in
         let* occs = list_size (int_bound 30) Gen.gen_occurrence in
         let* flags = list_repeat (List.length occs) (array_size (return 3) bool) in
         return (e, List.combine occs flags)))
    (fun (e, steps) ->
      match Detector.make e with
      | exception Invalid_argument _ -> true (* state-limit: skip *)
      | det ->
        if not (Detector.has_flat det) then
          QCheck.Test.fail_report "masked expression missed the flat tables";
        let current = ref [| true; true; true |] in
        let env =
          {
            Ode_event.Mask.empty_env with
            var =
              (fun n ->
                match n with
                | "cm0" -> Some (Value.Bool !current.(0))
                | "cm1" -> Some (Value.Bool !current.(1))
                | "cm2" -> Some (Value.Bool !current.(2))
                | _ -> None);
          }
        in
        let state = Detector.initial det in
        let w = Detector.n_state_words det in
        let cells = Array.make (w + 2) 0 in
        Detector.write_initial det cells 1;
        let agree =
          List.for_all
            (fun (occ, flags) ->
              current := flags;
              let code = Detector.classify_code det ~env occ in
              let word_fired = Detector.post_code det state ~env code in
              let slot_fired = Detector.post_code_slot det cells 1 ~env code in
              word_fired = slot_fired)
            steps
        in
        if not agree then
          QCheck.Test.fail_report "slot and word paths fired differently";
        if Array.sub cells 1 w <> state then
          QCheck.Test.fail_report "slot state diverged from word-vector state";
        cells.(0) = 0 && cells.(w + 1) = 0)

(* A directed case through the default (indexed) path, so the property
   above cannot pass vacuously with both paths broken the same way:
   check actual firing, §9 collection and one-shot deactivation. *)
let test_indexed_firing () =
  let db = D.create_db () in
  let fired = ref [] in
  let _sub = D.subscribe_firings db (fun f -> fired := f :: !fired) in
  let collected = ref [] in
  let event =
    Expr.sequence
      [
        Expr.after "f";
        Expr.after
          ~formals:[ { Expr.f_ty = None; f_name = "x" } ]
          ~mask:Mask.(var "x" >% v_int 3)
          "g";
      ]
  in
  let b = D.define_class "c" in
  let b = D.method_ b ~kind:D.Read_only "f" (fun _ _ _ -> Value.Unit) in
  let b = D.method_ b ~kind:D.Updating "g" (fun _ _ _ -> Value.Unit) in
  let b =
    D.trigger b "t" ~event ~action:(fun _ ctx -> collected := ctx.D.fc_collected)
  in
  D.register_class db b;
  (match
     D.with_txn db (fun _ ->
         let oid = D.create db "c" [] in
         D.activate db oid "t" [];
         ignore (D.call db oid "g" [ Value.Int 9 ]);
         (* g without a preceding f: must not fire *)
         ignore (D.call db oid "f" []);
         ignore (D.call db oid "g" [ Value.Int 2 ]);
         (* guard x > 3 fails: must not fire *)
         ignore (D.call db oid "f" []);
         ignore (D.call db oid "g" [ Value.Int 7 ]);
         oid)
   with
  | Ok oid ->
    Alcotest.(check (list string))
      "fired exactly once"
      [ "t" ]
      (List.map (fun (f : D.firing) -> f.D.f_trigger) (List.rev !fired));
    Alcotest.(check bool) "one-shot deactivated" false (D.is_active db oid "t")
  | Error `Aborted -> Alcotest.fail "transaction aborted");
  match !collected with
  | [ ("x", Value.Int 7) ] -> ()
  | other ->
    Alcotest.failf "collected %a"
      Fmt.(Dump.list (Dump.pair string (fun ppf v -> Value.pp ppf v)))
      other

let suite =
  Alcotest.test_case "indexed firing + collection" `Quick test_indexed_firing
  :: List.map QCheck_alcotest.to_alcotest
       [
         index_equals_scan;
         kernel_equals_legacy_equals_scan;
         kernel_codes_match_semantics;
         masked_slots_match_words;
       ]

let () =
  (* keep unlucky random expressions from determinizing for minutes *)
  Ode_event.Dfa.state_limit := 50_000;
  Alcotest.run "ode_events"
    [
      ("base", Test_base.suite);
      ("equivalence", Test_equivalence.suite);
      ("parser", Test_parser.suite);
      ("automata", Test_automata.suite);
      ("laws", Test_laws.suite);
      ("committed", Test_committed.suite);
      ("rewrite", Test_rewrite.suite);
      ("combine", Test_combine.suite);
      ("pipeline", Test_pipeline.suite);
      ("provenance", Test_provenance.suite);
      ("baseline", Test_baseline.suite);
      ("clock", Test_clock.suite);
      ("odb", Test_odb.suite);
      ("obs", Test_obs.suite);
      ("facade", Test_facade.suite);
      ("dispatch", Test_dispatch.suite);
      ("shard", Test_shard.suite);
      ("partition", Test_partition.suite);
      ("alloc", Test_alloc.suite);
      ("time-events", Test_time.suite);
      ("timer", Test_timer.suite);
      ("persistence", Test_persistence.suite);
      ("coupling", Test_coupling.suite);
      ("stockroom", Test_stockroom.suite);
      ("scope-and-history", Test_scope.suite);
      ("fulfillment", Test_fulfillment.suite);
      ("odl", Test_odl.suite);
      ("soak", Test_soak.suite);
      ("committed-integration", Test_committed_integration.suite);
      ("wal", Test_wal.suite);
      ("net", Test_net.suite);
    ]

(* The timing wheel against its oracle: the wheel and the sorted-list
   queue must be observationally identical — same firing traces, same
   ODE1 image bytes, same WAL replay — over arbitrary arm / cancel /
   re-arm / advance interleavings and at every partition count. Plus
   the satellites: equal-deadline (due, seq) order, eager cancellation
   visible in [stats.state_bytes], the ODE_TIMER_QUEUE selector, and
   the clock-only-replay regression. *)

open Ode_odb
module D = Database
module Value = Ode_base.Value

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

let fresh_dir () =
  let d = Filename.temp_file "ode_timer" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let mk_db ?durability ~partitions ~wheel () =
  let c =
    {
      (D.Config.of_env ()) with
      D.Config.partitions;
      timer_wheel = wheel;
    }
  in
  D.create_db ~config:c ?durability ()

(* Every timer shape the engine arms: a fast and a slow periodic (the
   slow one crosses level-1 rotations, period > 4096 ms), a one-shot
   after-period and a calendar pattern. *)
let triggers = [| "tick"; "slow"; "once"; "daily" |]

let schema () =
  D.define_class "probe"
  |> (fun b -> D.field b "n" (Value.Int 0))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "poke" (fun db oid _ ->
           D.set_field db oid "n" (Value.add (D.get_field db oid "n") (Value.Int 1));
           Value.Unit))
  |> (fun b ->
       D.trigger_str b ~perpetual:true "tick" ~event:"every time(MS=70)"
         ~action:(fun db ctx -> ignore (D.call db ctx.D.fc_oid "poke" [])))
  |> (fun b ->
       D.trigger_str b ~perpetual:true "slow" ~event:"every time(MS=4111)"
         ~action:(fun _ _ -> ()))
  |> (fun b ->
       D.trigger_str b "once" ~event:"after time(MS=150)" ~action:(fun _ _ -> ()))
  |> fun b ->
  D.trigger_str b ~perpetual:true "daily" ~event:"at time(HR=9)"
    ~action:(fun _ _ -> ())

(* ------------------------------------------------------------------ *)
(* The random script                                                   *)
(* ------------------------------------------------------------------ *)

type op =
  | Create of int (* trigger subset bitmask *)
  | Activate of int * string
  | Deactivate of int * string
  | Delete of int
  | Aborted of int * string (* arm + cancel inside a rolled-back txn *)
  | Advance of int

(* Spans are drawn to cross structure boundaries: inside a level-0
   rotation, across it, across the 4096 ms level-1 rotation, and
   (rarely — the periodic timers make every ms of horizon cost
   deliveries) a long hop over the 64^3 ms level-2 rotation. The
   [daily] calendar timer arms at a high level and cascades but stays
   a day away, pinning placement without the million ticks firing it
   would cost. *)
let gen_span rng =
  match Random.State.int rng 20 with
  | 0 | 1 | 2 | 3 | 4 | 5 | 6 | 7 -> 1 + Random.State.int rng 60
  | 8 | 9 | 10 | 11 | 12 -> 61 + Random.State.int rng 240
  | 13 | 14 | 15 -> 3_500 + Random.State.int rng 1_000
  | 16 -> 250_000 + Random.State.int rng 50_000
  | _ -> 30 + Random.State.int rng 100

let gen_ops rng =
  let n = 40 + Random.State.int rng 40 in
  List.init n (fun _ ->
      let trig () = triggers.(Random.State.int rng (Array.length triggers)) in
      let slot () = Random.State.int rng 8 in
      match Random.State.int rng 100 with
      | x when x < 20 -> Create (Random.State.int rng 16)
      | x when x < 34 -> Activate (slot (), trig ())
      | x when x < 46 -> Deactivate (slot (), trig ())
      | x when x < 52 -> Delete (slot ())
      | x when x < 60 -> Aborted (slot (), trig ())
      | _ -> Advance (gen_span rng))

(* Replay one script against one database; the trace is every firing
   in order, (trigger, oid, txn) — oids and txn ids are deterministic,
   so equal traces mean equal behaviour. *)
let run_script ops db =
  D.register_class db (schema ());
  let fired = ref [] in
  let _s =
    D.subscribe_firings db (fun f ->
        fired := (f.D.f_trigger, f.D.f_oid, f.D.f_txn) :: !fired)
  in
  let objs = ref [] in
  let pick i =
    match !objs with [] -> None | l -> Some (List.nth l (i mod List.length l))
  in
  let in_txn f =
    match D.with_txn db (fun _ -> f ()) with Ok () -> () | Error `Aborted -> ()
  in
  List.iter
    (fun op ->
      match op with
      | Create mask ->
        in_txn (fun () ->
            let oid = D.create db "probe" [] in
            Array.iteri
              (fun bit t ->
                if mask land (1 lsl bit) <> 0 then D.activate db oid t [])
              triggers;
            objs := !objs @ [ oid ])
      | Activate (i, t) -> (
        match pick i with
        | Some oid ->
          in_txn (fun () -> if D.exists db oid then D.activate db oid t [])
        | None -> ())
      | Deactivate (i, t) -> (
        match pick i with
        | Some oid ->
          in_txn (fun () -> if D.exists db oid then D.deactivate db oid t)
        | None -> ())
      | Delete i -> (
        match pick i with
        | Some oid -> in_txn (fun () -> if D.exists db oid then D.delete db oid)
        | None -> ())
      | Aborted (i, t) -> (
        (* arm, re-arm and cancel, then roll it all back: the
           [U_timers_armed]/[U_timers_cancelled] undo paths *)
        match pick i with
        | Some oid when D.exists db oid ->
          let tx = D.begin_txn db in
          (try
             D.activate db oid t [];
             D.activate db oid t [];
             D.deactivate db oid t;
             D.activate db oid t [];
             D.abort db tx
           with D.Lock_conflict _ -> D.abort db tx)
        | _ -> ())
      | Advance ms -> D.advance_clock db (Int64.of_int ms))
    ops;
  List.rev !fired

let run_one ops ?durability ~partitions ~wheel () =
  let db = mk_db ?durability ~partitions ~wheel () in
  let trace = run_script ops db in
  (db, trace, D.image_bytes db)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_oracle =
  QCheck.Test.make
    ~name:"wheel = sorted-list oracle (trace + ODE1 bytes, partitions 1/2/4)"
    ~count:20 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 0x17 |] in
      let ops = gen_ops rng in
      let _, tr0, img0 = run_one ops ~partitions:1 ~wheel:false () in
      List.for_all
        (fun p ->
          let _, tr, img = run_one ops ~partitions:p ~wheel:true () in
          tr = tr0 && String.equal img img0)
        [ 1; 2; 4 ])

let prop_wal_recovery =
  QCheck.Test.make
    ~name:"WAL replay rebuilds the wheel byte-for-byte (partitions 1/2)"
    ~count:12 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed; 0x33 |] in
      let ops = gen_ops rng in
      let _, _, img0 = run_one ops ~partitions:1 ~wheel:false () in
      List.for_all
        (fun p ->
          let dir = fresh_dir () in
          let cfg =
            Wal.config ~flush_ms:0 ~sync_on_flush:false ~snapshot_every:0 dir
          in
          let db, _, img =
            run_one ops ~durability:(`Wal cfg) ~partitions:p ~wheel:true ()
          in
          D.close_durability db;
          let rdb =
            mk_db ~durability:(`Wal (Wal.config dir)) ~partitions:p ~wheel:true
              ()
          in
          D.register_class rdb (schema ());
          D.recover rdb;
          let ok = String.equal (D.image_bytes rdb) img in
          D.close_durability rdb;
          ok && String.equal img img0)
        [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Deterministic pins                                                  *)
(* ------------------------------------------------------------------ *)

(* Equal deadlines deliver in activation order — the group-wide
   [tm_seq] stamp — identically for both representations and at any
   partition count (oids scatter over members; the merge re-serializes
   them). *)
let test_equal_deadline_order () =
  let runs =
    List.map
      (fun (wheel, partitions) ->
        let db = mk_db ~partitions ~wheel () in
        D.register_class db (schema ());
        let fired = ref [] in
        let _s = D.subscribe_firings db (fun f -> fired := f.D.f_oid :: !fired) in
        let oids =
          expect_ok
            (D.with_txn db (fun _ ->
                 List.init 6 (fun _ ->
                     let oid = D.create db "probe" [] in
                     D.activate db oid "tick" [];
                     oid)))
        in
        D.advance_clock db 70L;
        (oids, List.rev !fired))
      [ (false, 1); (true, 1); (true, 4) ]
  in
  match runs with
  | (oids0, fired0) :: rest ->
    Alcotest.(check (list int)) "all six fire, in activation order" oids0 fired0;
    List.iter
      (fun (_, fired) ->
        Alcotest.(check (list int)) "same order on every run" fired0 fired)
      rest
  | [] -> assert false

(* Eager cancellation shows up in the stats: deactivating a trigger or
   deleting an object releases its pending timers' bytes immediately
   (the lazy sweep kept them until due). *)
let test_eager_cancel_stats () =
  List.iter
    (fun wheel ->
      let db = mk_db ~partitions:1 ~wheel () in
      D.register_class db (schema ());
      let oid =
        expect_ok
          (D.with_txn db (fun _ ->
               let oid = D.create db "probe" [] in
               D.activate db oid "tick" [];
               D.activate db oid "slow" [];
               D.activate db oid "once" [];
               oid))
      in
      let armed = (D.stats db).D.state_bytes in
      expect_ok (D.with_txn db (fun _ -> D.deactivate db oid "tick"));
      let one_less = (D.stats db).D.state_bytes in
      Alcotest.(check bool) "deactivate released one timer" true
        (armed - one_less >= 100);
      expect_ok (D.with_txn db (fun _ -> D.delete db oid));
      let gone = (D.stats db).D.state_bytes in
      Alcotest.(check bool) "delete released the rest" true
        (one_less - gone >= 200))
    [ true; false ]

(* ODE_TIMER_QUEUE selects the representation at create_db. *)
let test_env_selector () =
  let old = Sys.getenv_opt "ODE_TIMER_QUEUE" in
  let restore () =
    Unix.putenv "ODE_TIMER_QUEUE" (match old with Some s -> s | None -> "")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "ODE_TIMER_QUEUE" "list";
      Alcotest.(check bool) "list selects the sorted queue" false
        (D.timer_wheel_enabled (D.create_db ()));
      Unix.putenv "ODE_TIMER_QUEUE" "wheel";
      Alcotest.(check bool) "wheel selects the wheel" true
        (D.timer_wheel_enabled (D.create_db ()));
      Unix.putenv "ODE_TIMER_QUEUE" "";
      Alcotest.(check bool) "default is the wheel" true
        (D.timer_wheel_enabled (D.create_db ()));
      Unix.putenv "ODE_TIMER_QUEUE" "bogus";
      Alcotest.(check bool) "unknown queue rejected" true
        (match D.create_db () with
        | exception D.Ode_error _ -> true
        | _ -> false))

(* Flipping the representation in place preserves the bytes and the
   behaviour from that point on. *)
let test_flip_representation () =
  let db = mk_db ~partitions:1 ~wheel:true () in
  let control = mk_db ~partitions:1 ~wheel:true () in
  let seed_ops db =
    D.register_class db (schema ());
    expect_ok
      (D.with_txn db (fun _ ->
           for _ = 1 to 4 do
             let oid = D.create db "probe" [] in
             D.activate db oid "tick" [];
             D.activate db oid "slow" []
           done));
    D.advance_clock db 100L
  in
  seed_ops db;
  seed_ops control;
  let img = D.image_bytes db in
  D.set_timer_wheel db false;
  Alcotest.(check bool) "flipped to the list" false (D.timer_wheel_enabled db);
  Alcotest.(check bool) "bytes preserved by wheel -> list" true
    (String.equal (D.image_bytes db) img);
  D.set_timer_wheel db true;
  Alcotest.(check bool) "bytes preserved by list -> wheel" true
    (String.equal (D.image_bytes db) img);
  D.advance_clock db 5_000L;
  D.advance_clock control 5_000L;
  Alcotest.(check bool) "flip is behaviour-transparent" true
    (String.equal (D.image_bytes db) (D.image_bytes control))

(* Regression: a WAL batch that moves the clock without touching the
   queue must keep wheel placement consistent on replay — the recovered
   engine once peeked a timer stranded at a stale level and spun
   forever trying to pull it. *)
let test_clock_only_replay () =
  let dir = fresh_dir () in
  let cfg =
    Wal.config ~flush_ms:0 ~sync_on_flush:false ~snapshot_every:0 dir
  in
  let db = mk_db ~durability:(`Wal cfg) ~partitions:1 ~wheel:true () in
  D.register_class db (schema ());
  expect_ok
    (D.with_txn db (fun _ ->
         let oid = D.create db "probe" [] in
         D.activate db oid "tick" []));
  (* nothing due by 65, queue untouched: this logs a clock-only batch
     that crosses the level-0 rotation the timer was placed under *)
  D.advance_clock db 65L;
  D.close_durability db;
  let rdb = mk_db ~durability:(`Wal (Wal.config dir)) ~partitions:1 ~wheel:true () in
  D.register_class rdb (schema ());
  D.recover rdb;
  let fired = ref 0 in
  let _s = D.subscribe_firings rdb (fun _ -> incr fired) in
  D.advance_clock rdb 10L;
  D.close_durability rdb;
  Alcotest.(check int) "the replayed timer still fires at 70" 1 !fired

(* The fleet scenario end to end, small: cadence deliveries, one-shot
   service alerts, eager cancellation via idle/retire — identical for
   both representations. *)
let test_fleet_small () =
  let run wheel =
    Unix.putenv "ODE_TIMER_QUEUE" (if wheel then "wheel" else "list");
    let fleet = Ode_scenarios.Fleet.setup ~vehicles:30 () in
    Ode_scenarios.Fleet.tick fleet 1_000L;
    let beats1 = Ode_scenarios.Fleet.total_beats fleet in
    Ode_scenarios.Fleet.idle fleet ~stride:3;
    Ode_scenarios.Fleet.retire fleet ~stride:7;
    Ode_scenarios.Fleet.tick fleet 40_000L;
    ( beats1,
      Ode_scenarios.Fleet.total_beats fleet,
      Ode_scenarios.Fleet.total_alerts fleet,
      D.image_bytes fleet.Ode_scenarios.Fleet.db )
  in
  let old = Sys.getenv_opt "ODE_TIMER_QUEUE" in
  let restore () =
    Unix.putenv "ODE_TIMER_QUEUE" (match old with Some s -> s | None -> "")
  in
  Fun.protect ~finally:restore (fun () ->
      let b1, b2, alerts, img_w = run true in
      let b1', b2', alerts', img_l = run false in
      (* 10 vehicles each at 50/250/1000 ms over 1000 ms *)
      Alcotest.(check int) "first-second heartbeats" ((20 * 10) + (4 * 10) + 10)
        b1;
      Alcotest.(check bool) "idle fleet keeps beating" true (b2 > b1);
      Alcotest.(check bool) "service checks came due" true (alerts > 0);
      Alcotest.(check int) "list rep: same first-second beats" b1 b1';
      Alcotest.(check int) "list rep: same final beats" b2 b2';
      Alcotest.(check int) "list rep: same alerts" alerts alerts';
      Alcotest.(check bool) "list rep: same image bytes" true
        (String.equal img_w img_l))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_oracle;
    QCheck_alcotest.to_alcotest prop_wal_recovery;
    Alcotest.test_case "equal deadlines keep activation order" `Quick
      test_equal_deadline_order;
    Alcotest.test_case "eager cancellation frees state bytes" `Quick
      test_eager_cancel_stats;
    Alcotest.test_case "ODE_TIMER_QUEUE selector" `Quick test_env_selector;
    Alcotest.test_case "representation flip is transparent" `Quick
      test_flip_representation;
    Alcotest.test_case "clock-only WAL batch replay (regression)" `Quick
      test_clock_only_replay;
    Alcotest.test_case "fleet scenario, wheel vs list" `Quick test_fleet_small;
  ]

(* §3 "events have a scope": database-scope triggers, and the §9 recorded
   event histories with their query combinators. *)

open Ode_odb
module D = Database
module Value = Ode_base.Value
module P = Ode_lang.Parser

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

let widget_class name =
  D.define_class name
  |> (fun b -> D.field b "n" (Value.Int 0))
  |> fun b ->
  D.method_ b ~kind:D.Updating "poke" (fun _ _ _ -> Value.Unit)

let test_schema_events () =
  let db = D.create_db () in
  let defined = ref [] in
  D.db_trigger_str db ~perpetual:true "schema_watch" ~event:"after defclass"
    ~action:(fun _ ctx ->
      match ctx.D.fc_occurrence.args with
      | [ Value.String name ] -> defined := name :: !defined
      | _ -> ());
  D.activate_db_trigger db "schema_watch" [];
  D.register_class db (widget_class "a");
  D.register_class db (widget_class "b");
  Alcotest.(check (list string)) "classes announced" [ "b"; "a" ] !defined

let test_creation_census () =
  (* the 3rd object created anywhere in the database *)
  let db = D.create_db () in
  let hits = ref [] in
  D.db_trigger_str db ~perpetual:true "third_object" ~event:"choose 3 (after create)"
    ~action:(fun _ ctx -> hits := ctx.D.fc_oid :: !hits);
  D.activate_db_trigger db "third_object" [];
  D.register_class db (widget_class "w");
  let oids =
    expect_ok
      (D.with_txn db (fun _ -> List.init 4 (fun _ -> D.create db "w" [])))
  in
  (match oids with
  | [ _; _; third; _ ] -> Alcotest.(check (list int)) "third object" [ third ] !hits
  | _ -> Alcotest.fail "expected 4 oids");
  (* deletion is observed too *)
  let deleted = ref 0 in
  D.db_trigger_str db ~perpetual:true "grave" ~event:"before delete"
    ~action:(fun _ _ -> incr deleted);
  D.activate_db_trigger db "grave" [];
  expect_ok (D.with_txn db (fun _ -> D.delete db (List.hd oids)));
  Alcotest.(check int) "delete observed" 1 !deleted

let test_db_trigger_masks () =
  (* the mask filters by class name through the occurrence argument *)
  let db = D.create_db () in
  let hits = ref 0 in
  D.db_trigger_str db ~perpetual:true "only_b" ~event:"after create(o, cls) && cls == \"b\""
    ~action:(fun _ _ -> incr hits);
  D.activate_db_trigger db "only_b" [];
  D.register_class db (widget_class "a");
  D.register_class db (widget_class "b");
  expect_ok
    (D.with_txn db (fun _ ->
         ignore (D.create db "a" []);
         ignore (D.create db "b" []);
         ignore (D.create db "a" [])));
  Alcotest.(check int) "only class b counted" 1 !hits

(* --- database-scope witness tracking (§9 provenance at db scope) --- *)

let test_db_witnesses () =
  let db = D.create_db () in
  let seen = ref [] in
  D.db_trigger_str db ~witnesses:true "pairs"
    ~event:"after create(o, cls); after create"
    ~action:(fun _ ctx ->
      match ctx.D.fc_witnesses with
      | Some ws -> seen := ws :: !seen
      | None -> Alcotest.fail "witnesses missing on db-scope trigger");
  (* control: without ~witnesses the context must carry None *)
  D.db_trigger_str db ~perpetual:true "no_wit" ~event:"after create"
    ~action:(fun _ ctx ->
      match ctx.D.fc_witnesses with
      | None -> ()
      | Some _ -> Alcotest.fail "witnesses present without ~witnesses");
  D.activate_db_trigger db "pairs" [];
  D.activate_db_trigger db "no_wit" [];
  D.register_class db (widget_class "w");
  let oids =
    expect_ok (D.with_txn db (fun _ -> List.init 2 (fun _ -> D.create db "w" [])))
  in
  match (!seen, oids) with
  | [ ws ], [ first; _ ] ->
    Alcotest.(check bool) "at least one witness" true (ws <> []);
    Alcotest.(check bool) "first create witnessed" true
      (List.exists
         (fun b ->
           List.assoc_opt "o" b = Some (Value.Oid first)
           && List.assoc_opt "cls" b = Some (Value.String "w"))
         ws)
  | seen, _ -> Alcotest.failf "expected one firing, got %d" (List.length seen)

(* Parity: the [fc_witnesses] a db-scope trigger hands its action must
   equal a reference [Provenance] engine fed the same occurrence stream
   the engine posts ([Oid oid; String cls] arguments, §3 scope events).
   The trigger fires on {e every} relevant occurrence (top-level [|]),
   so each firing exposes the provenance state at that point. *)

type scope_op = Create_a | Create_b | Delete_nth of int

let gen_scope_ops =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (frequency
         [
           (3, return Create_a);
           (3, return Create_b);
           (2, map (fun i -> Delete_nth i) (int_bound 11));
         ]))

let null_env : Ode_event.Mask.env =
  {
    var = (fun _ -> None);
    deref = (fun _ _ -> None);
    call = (fun _ _ -> raise (Ode_event.Mask.Eval_error "no functions"));
  }

let db_witness_parity =
  QCheck.Test.make ~count:60 ~name:"db-scope witnesses = reference provenance"
    (QCheck.make
       ~print:(fun ops ->
         String.concat "; "
           (List.map
              (function
                | Create_a -> "create a"
                | Create_b -> "create b"
                | Delete_nth i -> Printf.sprintf "delete #%d" i)
              ops))
       gen_scope_ops)
    (fun ops ->
      let event = "after create(o, cls) | before delete(o2, cls2)" in
      let db = D.create_db () in
      let got = ref [] in
      D.db_trigger_str db ~perpetual:true ~witnesses:true "watch" ~event
        ~action:(fun _ ctx ->
          match ctx.D.fc_witnesses with
          | Some ws -> got := ws :: !got
          | None -> Alcotest.fail "witnesses missing");
      D.activate_db_trigger db "watch" [];
      D.register_class db (widget_class "a");
      D.register_class db (widget_class "b");
      (* the engine's stream, replayed for the reference *)
      let stream = ref [] in
      let live = ref [] in  (* oids in creation order, still live *)
      expect_ok
        (D.with_txn db (fun _ ->
             List.iter
               (fun op ->
                 match op with
                 | Create_a | Create_b ->
                   let cls = if op = Create_a then "a" else "b" in
                   let oid = D.create db cls [] in
                   live := !live @ [ (oid, cls) ];
                   stream :=
                     (Ode_event.Symbol.Create,
                      [ Value.Oid oid; Value.String cls ])
                     :: !stream
                 | Delete_nth i -> (
                   match List.nth_opt !live i with
                   | None -> ()
                   | Some (oid, cls) ->
                     live := List.filter (fun (o, _) -> o <> oid) !live;
                     D.delete db oid;
                     stream :=
                       (Ode_event.Symbol.Delete,
                        [ Value.Oid oid; Value.String cls ])
                       :: !stream))
               ops));
      let expr =
        match Ode_lang.Parser.event_of_string event with
        | Ok e -> e
        | Error msg -> Alcotest.failf "parse: %s" msg
      in
      let prov = Ode_event.Provenance.make expr in
      let expected =
        List.filter_map
          (fun (basic, args) ->
            match
              Ode_event.Provenance.post prov ~env:null_env
                { Ode_event.Symbol.basic; args; at = 0L }
            with
            | [] -> None
            | ws -> Some ws)
          (List.rev !stream)
      in
      List.rev !got = expected)

let test_history_recording () =
  let db = D.create_db ~start_time:1000L () in
  D.enable_history db ~limit:100;
  D.register_class db (widget_class "w");
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "w" [] in
           ignore (D.call db oid "poke" []);
           oid))
  in
  let h = D.object_history db oid in
  (* tbegin, create, baccess, bupdate, bpoke, apoke, aupdate, aaccess,
     btcomplete, then tcommit from the system txn *)
  Alcotest.(check int) "all events recorded" 10 (List.length h);
  Alcotest.(check int) "one poke pair" 2 (List.length (History.methods_named "poke" h));
  Alcotest.(check int) "transactional events" 3 (List.length (History.transactional h));
  (match History.last (fun _ -> true) h with
  | Some r ->
    Alcotest.(check bool)
      "last is tcommit" true
      (r.History.h_occurrence.Ode_event.Symbol.basic = Ode_event.Symbol.Tcommit)
  | None -> Alcotest.fail "history is empty");
  (* aborted work stays in the true history (§6) *)
  let tx = D.begin_txn db in
  ignore (D.call db oid "poke" []);
  D.abort db tx;
  let h2 = D.object_history db oid in
  Alcotest.(check bool)
    "aborted poke recorded" true
    (List.length (History.methods_named "poke" h2) = 4);
  Alcotest.(check int)
    "abort events recorded" 2
    (History.count
       (fun r ->
         match r.History.h_occurrence.Ode_event.Symbol.basic with
         | Ode_event.Symbol.Tabort _ -> true
         | _ -> false)
       h2)

let test_history_limit () =
  let db = D.create_db () in
  D.enable_history db ~limit:5;
  D.register_class db (widget_class "w");
  let oid = expect_ok (D.with_txn db (fun _ -> D.create db "w" [])) in
  for _ = 1 to 10 do
    expect_ok (D.with_txn db (fun _ -> ignore (D.call db oid "poke" [])))
  done;
  Alcotest.(check int) "bounded" 5 (List.length (D.object_history db oid))

let test_history_off_by_default () =
  let db = D.create_db () in
  D.register_class db (widget_class "w");
  let oid = expect_ok (D.with_txn db (fun _ -> D.create db "w" [])) in
  Alcotest.(check int) "no recording" 0 (List.length (D.object_history db oid))

let test_object_listing () =
  let db = D.create_db () in
  D.register_class db (widget_class "a");
  D.register_class db (widget_class "b");
  let oids =
    expect_ok
      (D.with_txn db (fun _ ->
           let x = D.create db "a" [] in
           let y = D.create db "b" [] in
           let z = D.create db "a" [] in
           [ x; y; z ]))
  in
  (match oids with
  | [ x; y; z ] ->
    Alcotest.(check (list int)) "all objects" [ x; y; z ] (D.objects db);
    Alcotest.(check (list int)) "by class" [ x; z ] (D.objects_of_class db "a");
    expect_ok (D.with_txn db (fun _ -> D.delete db y));
    Alcotest.(check (list int)) "deleted objects drop out" [ x; z ] (D.objects db)
  | _ -> Alcotest.fail "expected 3 oids")

let test_history_queries () =
  let db = D.create_db ~start_time:100L () in
  D.enable_history db ~limit:100;
  D.register_class db (widget_class "w");
  let oid = expect_ok (D.with_txn db (fun _ -> D.create db "w" [])) in
  D.advance_clock db 900L;
  let tx = D.begin_txn db in
  let id = D.txn_id tx in
  ignore (D.call db oid "poke" []);
  (match D.commit db tx with Ok () -> () | Error `Aborted -> Alcotest.fail "abort");
  let h = D.object_history db oid in
  Alcotest.(check bool) "in_txn selects the poke txn" true
    (List.length (History.in_txn id h) > 0);
  Alcotest.(check int) "between selects by timestamp"
    (List.length (History.in_txn id h) + 1 (* + the system tcommit at t=1000 *))
    (List.length (History.between ~since:1000L ~until:2000L h));
  let total = History.fold (fun acc _ -> acc + 1) 0 h in
  Alcotest.(check int) "fold covers everything" (List.length h) total

let suite =
  [
    Alcotest.test_case "schema events" `Quick test_schema_events;
    Alcotest.test_case "creation census" `Quick test_creation_census;
    Alcotest.test_case "db-scope masks" `Quick test_db_trigger_masks;
    Alcotest.test_case "db-scope witnesses" `Quick test_db_witnesses;
    QCheck_alcotest.to_alcotest db_witness_parity;
    Alcotest.test_case "history recording (§9)" `Quick test_history_recording;
    Alcotest.test_case "history limit" `Quick test_history_limit;
    Alcotest.test_case "history off by default" `Quick test_history_off_by_default;
    Alcotest.test_case "object listings" `Quick test_object_listing;
    Alcotest.test_case "history queries" `Quick test_history_queries;
  ]

(* Backend equivalence: the Heap and Sharded store backends must be
   observably identical — same firings in the same order, same action
   log, same automaton states, same object listings, same statistics and
   byte-identical ODE1 persist images — on random schemas under random
   transaction scripts with commits, aborts, deletes and simulated-time
   advances. Likewise [post_many] must be bit-identical across domain
   counts: the parallel step phase (one task per shard) may not change a
   single observable, firing order and observability counters included.

   Directed tests below cover the new Store surface: [cardinal]/[mem]
   on both backends, the ascending-oid enumeration contract, oid
   round-robin over shards, and the [ODE_STORE_BACKEND] selector. *)

open Ode_odb
open Ode_event
module D = Database
module Value = Ode_base.Value
module Symbol = Ode_event.Symbol
module P = Ode_lang.Parser

(* ------------------------------------------------------------------ *)
(* Random scripts over several objects                                 *)
(* ------------------------------------------------------------------ *)

type op =
  | Call_f of int
  | Call_g of int * int
  | Set_cm of int * int * bool
  | Reactivate of int * int
  | New_obj
  | Del of int

type script = { ops : op list; commit : bool; advance : int }

type case = {
  (* event, perpetual, committed-mode, witnesses *)
  triggers : (Expr.t * bool * bool * bool) list;
  scripts : script list;
}

let n_objects = 5
let trigger_names case = List.mapi (fun i _ -> Printf.sprintf "t%d" i) case.triggers

(* Build the schema on the given backend, run every script, and
   summarise everything the backends could disagree on. Nothing is
   sorted: the {e order} of firings and logged actions is part of the
   contract. *)
(* [partitions]: [None] follows the environment (the default, like
   every other test); [Some n] pins an n-member engine group — the
   partition-equivalence properties in test_partition.ml run this same
   workload at several counts and compare. Pinning also pins [`Image]
   durability: partitioning is transparent to every logical observable,
   but {e how many} WAL batches a commit emits is per-member layout. *)
let create_db ?partitions ~backend () =
  match partitions with
  | None -> D.create_db ~backend ()
  | Some n ->
    D.create_db
      ~config:
        {
          (D.Config.of_env ()) with
          D.Config.backend;
          partitions = n;
          durability = `Image;
        }
      ()

let run ?(kernel = true) ?partitions ~backend case =
  let log = ref [] in
  let db = create_db ?partitions ~backend () in
  D.set_posting_kernel db kernel;
  let firings_log = ref [] in
  let _sub = D.subscribe_firings db (fun f -> firings_log := f :: !firings_log) in
  D.db_trigger_str db ~perpetual:true "census" ~event:"choose 2 (after create)"
    ~action:(fun _ ctx -> log := ("census", [ ("oid", Value.Int ctx.D.fc_oid) ], None) :: !log);
  D.activate_db_trigger db "census" [];
  let names = trigger_names case in
  let b = D.define_class "c" in
  let b = D.field b "cm0" (Value.Bool true) in
  let b = D.field b "cm1" (Value.Bool true) in
  let b = D.field b "cm2" (Value.Bool true) in
  let b = D.method_ b ~kind:D.Read_only "f" (fun _ _ _ -> Value.Unit) in
  let b = D.method_ b ~kind:D.Updating "g" (fun _ _ _ -> Value.Unit) in
  let b =
    D.trigger b ~perpetual:true "tick"
      ~event:(P.parse_event "every time(MS=100)")
      ~action:(fun _ ctx -> log := ("tick", [ ("oid", Value.Int ctx.D.fc_oid) ], None) :: !log)
  in
  let b =
    List.fold_left2
      (fun b name (event, perpetual, committed, witnesses) ->
        let mode = if committed then Detector.Committed else Detector.Full_history in
        D.trigger b ~perpetual ~mode ~witnesses name ~event ~action:(fun _ ctx ->
            log :=
              (name, List.sort compare ctx.D.fc_collected, ctx.D.fc_witnesses)
              :: !log))
      b names case.triggers
  in
  D.register_class db b;
  let oids =
    match
      D.with_txn db (fun _ ->
          List.init n_objects (fun _ ->
              let oid = D.create db "c" [] in
              List.iter (fun n -> D.activate db oid n []) ("tick" :: names);
              oid))
    with
    | Ok oids -> oids
    | Error `Aborted -> Alcotest.fail "setup transaction aborted"
  in
  let pick i = List.nth oids (i mod n_objects) in
  List.iter
    (fun s ->
      let tx = D.begin_txn db in
      List.iter
        (fun op ->
          match op with
          | Call_f i ->
            if D.exists db (pick i) then ignore (D.call db (pick i) "f" [])
          | Call_g (i, x) ->
            if D.exists db (pick i) then
              ignore (D.call db (pick i) "g" [ Value.Int x ])
          | Set_cm (i, j, v) ->
            if D.exists db (pick i) then
              D.set_field db (pick i) (Printf.sprintf "cm%d" (j mod 3)) (Value.Bool v)
          | Reactivate (i, j) ->
            if D.exists db (pick i) then
              D.activate db (pick i) (List.nth names (j mod List.length names)) []
          | New_obj -> ignore (D.create db "c" [])
          | Del i -> if D.exists db (pick i) then D.delete db (pick i))
        s.ops;
      if s.commit then ignore (D.commit db tx) else D.abort db tx;
      if s.advance > 0 then D.advance_clock db (Int64.of_int s.advance))
    case.scripts;
  let firings =
    List.map
      (fun (f : D.firing) -> (f.D.f_trigger, f.D.f_class, f.D.f_oid, f.D.f_txn))
      (List.rev !firings_log)
  in
  let states =
    List.concat_map
      (fun oid ->
        List.map
          (fun n ->
            let st = try Some (D.trigger_state db oid n) with D.Ode_error _ -> None in
            (oid, n, st, try D.is_active db oid n with D.Ode_error _ -> false))
          ("tick" :: names))
      (List.filter (D.exists db) oids)
  in
  let image =
    let tmp = Filename.temp_file "ode_shard" ".img" in
    D.save db tmp;
    let ic = open_in_bin tmp in
    let len = in_channel_length ic in
    let bytes = really_input_string ic len in
    close_in ic;
    Sys.remove tmp;
    bytes
  in
  ( firings,
    List.rev !log,
    states,
    D.objects db,
    D.objects_of_class db "c",
    D.stats db,
    image )

(* ------------------------------------------------------------------ *)
(* post_many across domain counts                                      *)
(* ------------------------------------------------------------------ *)

type batch_case = {
  btriggers : (Expr.t * bool * bool * bool) list;
  batch1 : (int * bool * int) list;  (* object index, f-or-g, g's argument *)
  batch2 : (int * bool * int) list;  (* posted in a second, aborted txn *)
}

let n_batch_objects = 8

(* Run both batches through [post_many] — the second in a transaction
   that aborts, exercising the merged per-shard undo segments — and
   summarise every observable, the exact counters included. *)
let run_batch ?(kernel = true) ?partitions ~backend ~domains case =
  let log = ref [] in
  let db = create_db ?partitions ~backend () in
  D.set_posting_kernel db kernel;
  D.set_post_domains db domains;
  (* make the domain count real even on a small box: no core-count
     clamp, no sequential fallback for small batches — these
     properties exist to drive the parallel machinery *)
  D.set_domain_clamp db false;
  D.set_parallel_threshold db 0;
  D.set_observability db true;
  let firings_log = ref [] in
  let _sub = D.subscribe_firings db (fun f -> firings_log := f :: !firings_log) in
  let names = List.mapi (fun i _ -> Printf.sprintf "t%d" i) case.btriggers in
  let b = D.define_class "c" in
  let b = D.field b "cm0" (Value.Bool true) in
  let b = D.field b "cm1" (Value.Bool true) in
  let b = D.field b "cm2" (Value.Bool true) in
  let b = D.method_ b ~kind:D.Read_only "f" (fun _ _ _ -> Value.Unit) in
  let b = D.method_ b ~kind:D.Updating "g" (fun _ _ _ -> Value.Unit) in
  let b =
    List.fold_left2
      (fun b name (event, perpetual, committed, witnesses) ->
        let mode = if committed then Detector.Committed else Detector.Full_history in
        D.trigger b ~perpetual ~mode ~witnesses name ~event ~action:(fun _ ctx ->
            log :=
              (name, ctx.D.fc_oid, List.sort compare ctx.D.fc_collected)
              :: !log))
      b names case.btriggers
  in
  D.register_class db b;
  let oids =
    match
      D.with_txn db (fun _ ->
          List.init n_batch_objects (fun _ ->
              let oid = D.create db "c" [] in
              List.iter (fun n -> D.activate db oid n []) names;
              oid))
    with
    | Ok oids -> oids
    | Error `Aborted -> Alcotest.fail "setup transaction aborted"
  in
  let to_events batch =
    List.map
      (fun (i, use_f, x) ->
        let oid = List.nth oids (i mod n_batch_objects) in
        if use_f then (oid, Symbol.Method (Symbol.After, "f"), [])
        else (oid, Symbol.Method (Symbol.After, "g"), [ Value.Int x ]))
      batch
  in
  let n1 = ref 0 and n2 = ref 0 in
  (match
     D.with_txn db (fun _ -> n1 := D.post_many db (to_events case.batch1))
   with
  | Ok () -> ()
  | Error `Aborted -> Alcotest.fail "batch transaction aborted");
  let tx = D.begin_txn db in
  n2 := D.post_many db (to_events case.batch2);
  D.abort db tx;
  let states =
    List.concat_map
      (fun oid ->
        List.map (fun n -> (oid, n, D.trigger_state db oid n, D.is_active db oid n)) names)
      oids
  in
  let obs = D.observe db in
  let counters =
    List.map
      (fun c -> (Ode_obs.Registry.counter_name c, Ode_obs.Registry.get obs c))
      Ode_obs.Registry.all_counters
  in
  let firings =
    List.map
      (fun (f : D.firing) -> (f.D.f_trigger, f.D.f_oid, f.D.f_txn))
      (List.rev !firings_log)
  in
  (* the persist image pins the exact post-batch state words: a domain
     count or path switch that corrupted even one automaton cell would
     change the bytes *)
  let image =
    let tmp = Filename.temp_file "ode_shard" ".img" in
    D.save db tmp;
    let ic = open_in_bin tmp in
    let len = in_channel_length ic in
    let bytes = really_input_string ic len in
    close_in ic;
    Sys.remove tmp;
    bytes
  in
  D.shutdown_pool db;
  ( !n1, !n2, firings, List.rev !log, states, counters,
    Ode_obs.Registry.posts_by_kind obs, image )

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_trigger =
  let open QCheck.Gen in
  let* e = Gen.gen_surface_masked ~max_size:6 () in
  let* perpetual = bool in
  let* committed = bool in
  let* witnesses = bool in
  return (e, perpetual, committed, witnesses)

let gen_op =
  let open QCheck.Gen in
  frequency
    [
      (3, map (fun i -> Call_f i) (int_bound (n_objects - 1)));
      (4, map2 (fun i x -> Call_g (i, x)) (int_bound (n_objects - 1)) (int_range (-2) 10));
      (1, map3 (fun i j v -> Set_cm (i, j, v)) (int_bound (n_objects - 1)) (int_bound 2) bool);
      (1, map2 (fun i j -> Reactivate (i, j)) (int_bound (n_objects - 1)) (int_bound 7));
      (1, return New_obj);
      (1, map (fun i -> Del i) (int_bound (n_objects - 1)));
    ]

let gen_script =
  let open QCheck.Gen in
  let* ops = list_size (int_range 1 6) gen_op in
  let* commit = bool in
  let* advance = frequency [ (3, return 0); (1, int_range 1 350) ] in
  return { ops; commit; advance }

let gen_case =
  let open QCheck.Gen in
  map2
    (fun triggers scripts -> { triggers; scripts })
    (list_size (int_range 1 3) gen_trigger)
    (list_size (int_range 1 5) gen_script)

let gen_batch_item =
  let open QCheck.Gen in
  map3
    (fun i use_f x -> (i, use_f, x))
    (int_bound (n_batch_objects - 1))
    bool (int_range (-2) 10)

let gen_batch_case =
  let open QCheck.Gen in
  map3
    (fun btriggers batch1 batch2 -> { btriggers; batch1; batch2 })
    (list_size (int_range 1 3) gen_trigger)
    (list_size (int_range 1 16) gen_batch_item)
    (list_size (int_range 0 12) gen_batch_item)

let pp_trigger ppf (e, p, c, w) =
  Fmt.pf ppf "trigger%s%s%s: %a"
    (if p then " perpetual" else "")
    (if c then " committed" else "")
    (if w then " witnesses" else "")
    Expr.pp e

let pp_op ppf = function
  | Call_f i -> Fmt.pf ppf "o%d.f()" i
  | Call_g (i, x) -> Fmt.pf ppf "o%d.g(%d)" i x
  | Set_cm (i, j, v) -> Fmt.pf ppf "o%d.cm%d := %b" i (j mod 3) v
  | Reactivate (i, j) -> Fmt.pf ppf "o%d reactivate %d" i j
  | New_obj -> Fmt.pf ppf "new"
  | Del i -> Fmt.pf ppf "delete o%d" i

let print_case case =
  Fmt.str "@[<v>%a@,%a@]"
    Fmt.(list pp_trigger)
    case.triggers
    Fmt.(
      list (fun ppf s ->
          Fmt.pf ppf "%s +%dms [%a]"
            (if s.commit then "commit" else "abort")
            s.advance
            (list ~sep:(any "; ") pp_op) s.ops))
    case.scripts

let print_batch_case case =
  Fmt.str "@[<v>%a@,batch1 %a@,batch2 %a@]"
    Fmt.(list pp_trigger)
    case.btriggers
    Fmt.(
      Dump.list (fun ppf (i, f, x) ->
          if f then Fmt.pf ppf "o%d.f" i else Fmt.pf ppf "o%d.g(%d)" i x))
    case.batch1
    Fmt.(
      Dump.list (fun ppf (i, f, x) ->
          if f then Fmt.pf ppf "o%d.f" i else Fmt.pf ppf "o%d.g(%d)" i x))
    case.batch2

let compiles (e, _, committed, _) =
  let mode = if committed then Detector.Committed else Detector.Full_history in
  match Detector.make ~mode e with
  | exception Invalid_argument _ -> false (* state-limit blowup: skip *)
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let heap_equals_sharded =
  QCheck.Test.make ~count:40 ~name:"Heap = Sharded (firings, states, persist bytes)"
    (QCheck.make ~print:print_case gen_case)
    (fun case ->
      QCheck.assume (List.for_all compiles case.triggers);
      let h = run ~backend:`Heap case in
      h = run ~backend:(`Sharded 4) case && h = run ~backend:(`Sharded 3) case)

let post_many_domains_equal =
  QCheck.Test.make ~count:40 ~name:"post_many: 1 domain = 4 domains = Heap"
    (QCheck.make ~print:print_batch_case gen_batch_case)
    (fun case ->
      QCheck.assume (List.for_all compiles case.btriggers);
      let d1 = run_batch ~backend:(`Sharded 8) ~domains:1 case in
      d1 = run_batch ~backend:(`Sharded 8) ~domains:4 case
      && d1 = run_batch ~backend:`Heap ~domains:4 case)

(* The posting kernel against the legacy indexed path it replaced, on
   both backends: same firings, same states, same object listings, same
   byte-identical persist image. The state representation (SoA slots) is
   shared by both paths, so the image comparison pins the kernel's
   in-place stepping to the exact words the legacy path computes. *)
let kernel_equals_prekernel_backends =
  QCheck.Test.make ~count:30
    ~name:"posting kernel = pre-kernel path (both backends, persist bytes)"
    (QCheck.make ~print:print_case gen_case)
    (fun case ->
      QCheck.assume (List.for_all compiles case.triggers);
      let k = run ~kernel:true ~backend:(`Sharded 4) case in
      k = run ~kernel:false ~backend:(`Sharded 4) case
      && k = run ~kernel:false ~backend:`Heap case)

(* Likewise for the batch pipeline, exact observability counters
   included, across 1/4-domain step phases: the kernel's per-shard
   scratch accumulators must flush to the same totals the legacy path
   records one event at a time. *)
let kernel_equals_prekernel_batches =
  QCheck.Test.make ~count:30
    ~name:"post_many: kernel = pre-kernel (1/4 domains, counters)"
    (QCheck.make ~print:print_batch_case gen_batch_case)
    (fun case ->
      QCheck.assume (List.for_all compiles case.btriggers);
      let k = run_batch ~kernel:true ~backend:(`Sharded 8) ~domains:1 case in
      k = run_batch ~kernel:false ~backend:(`Sharded 8) ~domains:1 case
      && k = run_batch ~kernel:false ~backend:(`Sharded 8) ~domains:4 case
      && k = run_batch ~kernel:false ~backend:`Heap ~domains:1 case)

(* Kernel coverage, detector level: every expression the generators can
   produce — composite masks, [choose]/[every] counting, nesting — must
   compile to the flat-table representation in both history modes. The
   multi-level tables made the full algebra kernel-eligible; this pins
   that no compilable expression silently falls back to the boxed
   interpreter. *)
let all_expressions_flat =
  QCheck.Test.make ~count:300 ~name:"kernel coverage: every compilable expression has flat tables"
    (QCheck.make
       ~print:(Fmt.str "%a" Expr.pp)
       (Gen.gen_surface_masked ~max_size:8 ()))
    (fun e ->
      List.for_all
        (fun mode ->
          match Detector.make ~mode e with
          | exception Invalid_argument _ -> true (* state-limit: skip *)
          | det -> Detector.has_flat det)
        [ Detector.Full_history; Detector.Committed ])

(* Kernel coverage, pipeline level: with every object-scope detector
   flat-eligible and no database-scope triggers in the batch schema,
   every automaton advance must go through a SoA slot — the boxed
   word-vector counter stays at zero. *)
let batch_steps_all_slots =
  QCheck.Test.make ~count:30
    ~name:"post_many: object-scope advances are all flat-table slots"
    (QCheck.make ~print:print_batch_case gen_batch_case)
    (fun case ->
      QCheck.assume (List.for_all compiles case.btriggers);
      let _, _, _, _, _, counters, _, _ =
        run_batch ~kernel:true ~backend:(`Sharded 8) ~domains:2 case
      in
      let get n = List.assoc n counters in
      get "word_transitions" = 0
      && get "slot_transitions" = get "transitions")

(* ------------------------------------------------------------------ *)
(* Directed tests                                                      *)
(* ------------------------------------------------------------------ *)

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

let simple_class () =
  D.define_class "c" |> fun b -> D.field b "x" (Value.Int 0)

(* same class built at the Schema layer, for the Store-level tests that
   need a raw [Types.db] *)
let simple_schema_class () =
  Schema.field (Schema.define_class "c") "x" (Value.Int 0)

let test_backend_name () =
  let db = D.create_db ~backend:`Heap () in
  Alcotest.(check string) "heap" "heap" (D.backend_name db);
  let db = D.create_db ~backend:(`Sharded 4) () in
  Alcotest.(check string) "sharded" "sharded:4" (D.backend_name db)

(* [cardinal]/[mem]/enumeration at the Store layer, on both backends:
   committed deletes keep the record (mem true, default cardinal counts
   it) but leave the live count and listings. *)
let test_store_primitives () =
  List.iter
    (fun spec ->
      let db = D.create_db ~backend:spec () in
      D.register_class db (simple_class ());
      let oids =
        expect_ok
          (D.with_txn db (fun _ -> List.init 10 (fun _ -> D.create db "c" [])))
      in
      Alcotest.(check (list int)) "ascending enumeration" oids (D.objects db);
      expect_ok (D.with_txn db (fun _ -> D.delete db (List.nth oids 3)));
      let s = D.stats db in
      Alcotest.(check int) "live count after delete" 9 s.D.n_objects;
      Alcotest.(check (list int))
        "listing skips deleted"
        (List.filter (fun o -> o <> List.nth oids 3) oids)
        (D.objects db);
      Alcotest.(check bool) "exists false" false (D.exists db (List.nth oids 3)))
    [ `Heap; `Sharded 4 ]

let test_store_layer_cardinal_mem () =
  List.iter
    (fun spec ->
      let db = Types.make_db ~backend:(Store.backend_of spec) () in
      Schema.register_class db (simple_schema_class ());
      let oids =
        expect_ok
          (Txn.with_txn db (fun _ -> List.init 10 (fun _ -> Engine.create db "c" [])))
      in
      Alcotest.(check int) "cardinal" 10 (Store.cardinal db);
      Alcotest.(check int) "cardinal ~live" 10 (Store.cardinal ~live:true db);
      Alcotest.(check bool) "mem" true (Store.mem db (List.hd oids));
      Alcotest.(check bool) "not mem" false (Store.mem db 424242);
      expect_ok (Txn.with_txn db (fun _ -> Engine.delete db (List.nth oids 0)));
      Alcotest.(check int) "cardinal keeps tombstone" 10 (Store.cardinal db);
      Alcotest.(check int) "live cardinal drops" 9 (Store.cardinal ~live:true db);
      Alcotest.(check bool) "tombstone mem" true (Store.mem db (List.nth oids 0));
      (* an aborted delete restores the live count *)
      let tx = Txn.begin_txn db in
      Engine.delete db (List.nth oids 1);
      Alcotest.(check int) "mid-txn live" 8 (Store.cardinal ~live:true db);
      Txn.abort db tx;
      Alcotest.(check int) "abort restores live" 9 (Store.cardinal ~live:true db);
      (* an aborted create removes the record entirely *)
      let tx = Txn.begin_txn db in
      let noid = Engine.create db "c" [] in
      Txn.abort db tx;
      Alcotest.(check bool) "aborted create not mem" false (Store.mem db noid);
      Alcotest.(check int) "aborted create cardinal" 10 (Store.cardinal db))
    [ `Heap; `Sharded 4 ]

let test_shard_partition () =
  let db = Types.make_db ~backend:(Store.backend_of (`Sharded 4)) () in
  Schema.register_class db (simple_schema_class ());
  Alcotest.(check int) "shards" 4 (Store.shards db);
  let oids =
    expect_ok
      (Txn.with_txn db (fun _ -> List.init 8 (fun _ -> Engine.create db "c" [])))
  in
  (* a monotone oid stream round-robins the shards *)
  let shard_counts = Array.make 4 0 in
  List.iter
    (fun oid ->
      let s = Store.shard_of db oid in
      Alcotest.(check bool) "shard in range" true (s >= 0 && s < 4);
      shard_counts.(s) <- shard_counts.(s) + 1)
    oids;
  Array.iter (fun n -> Alcotest.(check int) "balanced" 2 n) shard_counts;
  let db_heap = Types.make_db ~backend:(Store.backend_of `Heap) () in
  Alcotest.(check int) "heap is one shard" 1 (Store.shards db_heap);
  Alcotest.(check int) "heap shard_of" 0 (Store.shard_of db_heap 17)

let test_env_selector () =
  let with_env v f =
    let old = Sys.getenv_opt "ODE_STORE_BACKEND" in
    Unix.putenv "ODE_STORE_BACKEND" v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "ODE_STORE_BACKEND" (Option.value ~default:"" old))
      f
  in
  with_env "heap" (fun () ->
      Alcotest.(check bool) "heap" true (Store.default_spec () = `Heap));
  with_env "sharded" (fun () ->
      Alcotest.(check bool)
        "sharded default" true
        (Store.default_spec () = `Sharded Store.default_shards));
  with_env "sharded:3" (fun () ->
      Alcotest.(check bool) "sharded:3" true (Store.default_spec () = `Sharded 3));
  with_env "bogus" (fun () ->
      Alcotest.check_raises "bogus rejected"
        (Types.Ode_error "ODE_STORE_BACKEND: unknown backend \"bogus\"")
        (fun () -> ignore (Store.default_spec ())));
  with_env "sharded:0" (fun () ->
      Alcotest.check_raises "zero shards rejected"
        (Types.Ode_error "ODE_STORE_BACKEND: bad shard count in \"sharded:0\"")
        (fun () -> ignore (Store.default_spec ())))

(* The pool itself: every task runs exactly once, failures propagate
   after the join, shutdown is idempotent. *)
let test_pool () =
  let p = Pool.create ~size:4 in
  Alcotest.(check int) "size" 4 (Pool.size p);
  let hits = Array.make 64 0 in
  Pool.run p ~tasks:64 (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iter (fun n -> Alcotest.(check int) "each task once" 1 n) hits;
  (* reuse across batches *)
  let total = Atomic.make 0 in
  Pool.run p ~tasks:10 (fun _ -> Atomic.incr total);
  Alcotest.(check int) "second batch" 10 (Atomic.get total);
  (* a failing task does not lose the others, and the exception surfaces *)
  let ran = Atomic.make 0 in
  (match
     Pool.run p ~tasks:8 (fun i ->
         Atomic.incr ran;
         if i = 3 then failwith "task 3 failed")
   with
  | () -> Alcotest.fail "expected the task failure to propagate"
  | exception Failure msg -> Alcotest.(check string) "message" "task 3 failed" msg);
  Alcotest.(check int) "all tasks still ran" 8 (Atomic.get ran);
  (* static distribution: same run-once contract on a task count that is
     not a multiple of the pool size *)
  let shits = Array.make 13 0 in
  Pool.run_static p ~tasks:13 (fun i -> shits.(i) <- shits.(i) + 1);
  Array.iter (fun n -> Alcotest.(check int) "static task once" 1 n) shits;
  let sran = Atomic.make 0 in
  (match
     Pool.run_static p ~tasks:8 (fun i ->
         Atomic.incr sran;
         if i = 5 then failwith "static task 5 failed")
   with
  | () -> Alcotest.fail "expected the static task failure to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "static message" "static task 5 failed" msg);
  Alcotest.(check int) "static siblings still ran" 8 (Atomic.get sran);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

(* Persist round-trip across backends: an image saved from one backend
   loads into the other and detection picks up mid-sequence. *)
let test_cross_backend_image () =
  let fired = ref 0 in
  let mk backend =
    let db = D.create_db ~backend () in
    let b = D.define_class "c" in
    let b = D.method_ b ~kind:D.Read_only "f" (fun _ _ _ -> Value.Unit) in
    let b = D.method_ b ~kind:D.Updating "g" (fun _ _ _ -> Value.Unit) in
    let b =
      D.trigger_str b "t" ~event:"after f ; after g" ~action:(fun _ _ -> incr fired)
    in
    D.register_class db b;
    db
  in
  let db = mk (`Sharded 4) in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "c" [] in
           D.activate db oid "t" [];
           ignore (D.call db oid "f" []);
           oid))
  in
  let tmp = Filename.temp_file "ode_shard" ".img" in
  D.save db tmp;
  let db2 = mk `Heap in
  D.load db2 tmp;
  Sys.remove tmp;
  expect_ok (D.with_txn db2 (fun _ -> ignore (D.call db2 oid "g" [])));
  Alcotest.(check int) "sequence completed after reload" 1 !fired

let suite =
  [
    Alcotest.test_case "backend names" `Quick test_backend_name;
    Alcotest.test_case "store primitives on both backends" `Quick test_store_primitives;
    Alcotest.test_case "cardinal and mem" `Quick test_store_layer_cardinal_mem;
    Alcotest.test_case "shard partition" `Quick test_shard_partition;
    Alcotest.test_case "ODE_STORE_BACKEND selector" `Quick test_env_selector;
    Alcotest.test_case "domain pool" `Quick test_pool;
    Alcotest.test_case "cross-backend image" `Quick test_cross_backend_image;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        heap_equals_sharded;
        post_many_domains_equal;
        kernel_equals_prekernel_backends;
        kernel_equals_prekernel_batches;
        all_expressions_flat;
        batch_steps_all_slots;
      ]

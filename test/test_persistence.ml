(* Save/load: objects, fields, trigger activations and their automaton
   state survive a round trip — mid-detection. *)

open Ode_odb
module D = Database
module Value = Ode_base.Value
module P = Ode_lang.Parser

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

let schema fired =
  D.define_class "item"
  |> (fun b -> D.field b "qty" (Value.Int 0))
  |> (fun b -> D.field b "name" (Value.String ""))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "deposit" (fun db oid args ->
           match args with
           | [ q ] ->
             D.set_field db oid "qty"
               (Value.add (D.get_field db oid "qty") q);
             Value.Unit
           | _ -> Value.Unit))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "withdraw" (fun db oid args ->
           match args with
           | [ q ] ->
             D.set_field db oid "qty" (Value.sub (D.get_field db oid "qty") q);
             Value.Unit
           | _ -> Value.Unit))
  |> fun b ->
  D.trigger b ~perpetual:true "third"
    ~event:(P.parse_event "choose 3 (after deposit)")
    ~action:(fun _ ctx -> fired := ctx.D.fc_oid :: !fired)

let tmp = Filename.temp_file "ode" ".img"

let test_roundtrip () =
  let fired = ref [] in
  let db = D.create_db ~start_time:123_456L () in
  D.register_class db (schema fired);
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "item" [] in
           D.set_field db oid "name" (Value.String "widget");
           D.activate db oid "third" [];
           (* two of the three deposits, then save mid-count *)
           ignore (D.call db oid "deposit" [ Value.Int 2 ]);
           ignore (D.call db oid "deposit" [ Value.Int 3 ]);
           oid))
  in
  D.save db tmp;
  (* reload into a fresh database with the same schema *)
  let fired2 = ref [] in
  let db2 = D.create_db () in
  D.register_class db2 (schema fired2);
  D.load db2 tmp;
  Alcotest.(check bool) "object survives" true (D.exists db2 oid);
  Alcotest.(check bool)
    "fields survive" true
    (Value.equal (D.get_field db2 oid "qty") (Value.Int 5)
    && Value.equal (D.get_field db2 oid "name") (Value.String "widget"));
  Alcotest.(check int64) "clock survives" 123_456L (D.now db2);
  Alcotest.(check bool) "activation survives" true (D.is_active db2 oid "third");
  Alcotest.(check bool) "no firing yet" true (!fired2 = []);
  (* the count of 2 deposits must survive: one more completes choose 3 *)
  expect_ok
    (D.with_txn db2 (fun _ -> ignore (D.call db2 oid "deposit" [ Value.Int 1 ])));
  Alcotest.(check bool) "detection state survived the round trip" true
    (List.mem oid !fired2);
  (* and a fourth deposit does not re-fire choose 3 *)
  expect_ok
    (D.with_txn db2 (fun _ -> ignore (D.call db2 oid "deposit" [ Value.Int 1 ])));
  Alcotest.(check int) "choose picks exactly the third" 1 (List.length !fired2)

let test_save_open_txn_rejected () =
  let db = D.create_db () in
  D.register_class db (schema (ref []));
  let tx = D.begin_txn db in
  Alcotest.check_raises "open txn" (D.Ode_error "cannot save with open transactions")
    (fun () -> D.save db tmp);
  D.abort db tx

let test_new_objects_after_load () =
  let fired = ref [] in
  let db = D.create_db () in
  D.register_class db (schema fired);
  let oid1 =
    expect_ok (D.with_txn db (fun _ -> D.create db "item" []))
  in
  D.save db tmp;
  let db2 = D.create_db () in
  D.register_class db2 (schema fired);
  D.load db2 tmp;
  let oid2 = expect_ok (D.with_txn db2 (fun _ -> D.create db2 "item" [])) in
  Alcotest.(check bool) "oid counter restored, no collision" true (oid2 <> oid1)

let test_corrupt_image () =
  let db = D.create_db () in
  D.register_class db (schema (ref []));
  Ode_base.Codec.to_file tmp "garbage";
  Alcotest.(check bool) "corrupt image rejected" true
    (match D.load db tmp with
    | () -> false
    | exception Ode_base.Codec.Corrupt _ -> true)

(* [load] replaces state, not wiring: firing subscriptions registered
   before the load keep delivering afterwards. *)
let test_subscriptions_survive_load () =
  let fired = ref [] in
  let db = D.create_db () in
  D.register_class db (schema (ref []));
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "item" [] in
           D.activate db oid "third" [];
           ignore (D.call db oid "deposit" [ Value.Int 1 ]);
           ignore (D.call db oid "deposit" [ Value.Int 1 ]);
           oid))
  in
  D.save db tmp;
  let db2 = D.create_db () in
  D.register_class db2 (schema (ref []));
  let seen = ref [] in
  ignore (D.subscribe_firings db2 (fun f -> seen := f.D.f_trigger :: !seen));
  D.load db2 tmp;
  expect_ok
    (D.with_txn db2 (fun _ -> ignore (D.call db2 oid "deposit" [ Value.Int 1 ])));
  Alcotest.(check (list string))
    "pre-load subscriber sees the post-load firing" [ "third" ] !seen;
  ignore !fired

(* Two timers due at the same instant: the queue's FIFO order among
   equal deadlines must survive the round trip — both deliveries happen,
   in the original activation order. *)
let timer_schema () =
  D.define_class "beeper"
  |> (fun b ->
       D.trigger_str b ~perpetual:true "tick" ~event:"every time(MS=100)"
         ~action:(fun _ _ -> ()))
  |> fun b ->
  D.trigger_str b ~perpetual:true "tock" ~event:"every time(MS=100)"
    ~action:(fun _ _ -> ())

let timer_firings db =
  let seen = ref [] in
  ignore
    (D.subscribe_firings db (fun f -> seen := (f.D.f_trigger, f.D.f_oid) :: !seen));
  fun () -> List.rev !seen

let test_equal_deadline_timers () =
  let build () =
    let db = D.create_db () in
    D.register_class db (timer_schema ());
    let a, b =
      expect_ok
        (D.with_txn db (fun _ ->
             let a = D.create db "beeper" [] in
             let b = D.create db "beeper" [] in
             (* four timers, all due at t=100, armed in a fixed order *)
             D.activate db a "tick" [];
             D.activate db b "tock" [];
             D.activate db b "tick" [];
             D.activate db a "tock" [];
             (a, b)))
    in
    ignore (a, b);
    db
  in
  let db = build () in
  let direct = timer_firings db in
  D.advance_clock db 250L;
  let db0 = build () in
  D.save db0 tmp;
  let db2 = D.create_db () in
  D.register_class db2 (timer_schema ());
  let reloaded = timer_firings db2 in
  D.load db2 tmp;
  D.advance_clock db2 250L;
  Alcotest.(check bool) "both deliveries happen" true
    (List.length (direct ()) = 8 (* 4 timers x 2 periods *));
  Alcotest.(check bool)
    "equal-deadline delivery order survives the round trip" true
    (direct () = reloaded ())

(* Committed-mode detection state after a history of commits interleaved
   with aborts: what survives the round trip must be exactly what the
   aborts left behind — aborted occurrences discarded, committed ones
   kept. *)
let committed_schema () =
  D.define_class "ledger"
  |> (fun b -> D.field b "qty" (Value.Int 0))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "deposit" (fun db oid args ->
           match args with
           | [ q ] ->
             D.set_field db oid "qty" (Value.add (D.get_field db oid "qty") q);
             Value.Unit
           | _ -> Value.Unit))
  |> fun b ->
  D.trigger_str b ~perpetual:true ~mode:Ode_event.Detector.Committed "cthird"
    ~event:"after deposit; after deposit; after deposit"
    ~action:(fun _ _ -> ())

(* Committed-mode triggers fire eagerly and roll their automaton state
   and effects back on abort (consumers filter the subscription stream
   by transaction fate) — so the invariant to pin is equivalence: after
   an abort-heavy history, a database that went through save/load must
   behave {e exactly} like one that never did, including during and
   after further aborted transactions. *)
let test_committed_mode_abort_history () =
  let drain db =
    let seen = ref [] in
    ignore
      (D.subscribe_firings db (fun f ->
           seen := (f.D.f_trigger, f.D.f_oid, f.D.f_txn) :: !seen));
    fun () ->
      let fs = List.rev !seen in
      seen := [];
      fs
  in
  let run ~roundtrip =
    let mk () =
      let db = D.create_db () in
      D.register_class db (committed_schema ());
      db
    in
    let db = mk () in
    let fired = drain db in
    let oid =
      expect_ok
        (D.with_txn db (fun _ ->
             let oid = D.create db "ledger" [] in
             D.activate db oid "cthird" [];
             ignore (D.call db oid "deposit" [ Value.Int 1 ]);
             oid))
    in
    (* the abort-heavy prefix: each aborted deposit advances the
       committed automaton mid-transaction, then rolls back *)
    for _ = 1 to 4 do
      let tx = D.begin_txn db in
      ignore (D.call db oid "deposit" [ Value.Int 10 ]);
      D.abort db tx
    done;
    expect_ok
      (D.with_txn db (fun _ -> ignore (D.call db oid "deposit" [ Value.Int 1 ])));
    Alcotest.(check bool) "aborted deposits left the balance alone" true
      (Value.equal (D.get_field db oid "qty") (Value.Int 2));
    let db, fired =
      if not roundtrip then (db, fired)
      else begin
        D.save db tmp;
        let db2 = mk () in
        let fired2 = drain db2 in
        D.load db2 tmp;
        (db2, fired2)
      end
    in
    ignore (fired ());
    (* tail: one more aborted completion (fires eagerly, rolls back),
       then the committed completion — txn ids continue from the
       restored counter, so the streams must match verbatim *)
    let tx = D.begin_txn db in
    ignore (D.call db oid "deposit" [ Value.Int 10 ]);
    D.abort db tx;
    expect_ok
      (D.with_txn db (fun _ -> ignore (D.call db oid "deposit" [ Value.Int 1 ])));
    (fired (), D.get_field db oid "qty", D.image_bytes db)
  in
  let fired_direct, qty_direct, img_direct = run ~roundtrip:false in
  let fired_loaded, qty_loaded, img_loaded = run ~roundtrip:true in
  Alcotest.(check bool) "tail firing streams identical" true
    (fired_direct = fired_loaded);
  Alcotest.(check bool) "a completion is in the tail" true
    (List.exists (fun (t, _, _) -> t = "cthird") fired_direct);
  Alcotest.(check bool) "balances identical" true
    (Value.equal qty_direct qty_loaded);
  Alcotest.(check bool) "final images byte-identical" true
    (String.equal img_direct img_loaded)

let suite =
  [
    Alcotest.test_case "image round-trip" `Quick test_roundtrip;
    Alcotest.test_case "save with open txn rejected" `Quick test_save_open_txn_rejected;
    Alcotest.test_case "oid counter survives" `Quick test_new_objects_after_load;
    Alcotest.test_case "corrupt image rejected" `Quick test_corrupt_image;
    Alcotest.test_case "subscriptions survive load" `Quick
      test_subscriptions_survive_load;
    Alcotest.test_case "equal-deadline timers survive load" `Quick
      test_equal_deadline_timers;
    Alcotest.test_case "committed-mode abort history survives load" `Quick
      test_committed_mode_abort_history;
  ]

(* The Ode substrate: transactions, locking, undo, trigger firing,
   transaction events, time events, persistence. *)

open Ode_odb
module D = Database
module Value = Ode_base.Value
module P = Ode_lang.Parser

let counter_class ?(triggers = fun b -> b) () =
  D.define_class "counter"
    ~constructor:(fun db oid _args -> D.set_field db oid "n" (Value.Int 0))
  |> (fun b -> D.field b "n" (Value.Int 0))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "incr" (fun db oid _ ->
           let n = Value.to_int (D.get_field db oid "n") + 1 in
           D.set_field db oid "n" (Value.Int n);
           Value.Int n))
  |> (fun b ->
       D.method_ b ~kind:D.Read_only "get" (fun db oid _ -> D.get_field db oid "n"))
  |> triggers

let fresh_db ?triggers () =
  let db = D.create_db () in
  D.register_class db (counter_class ?triggers ());
  db

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

let test_basics () =
  let db = fresh_db () in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "counter" [] in
           Alcotest.(check bool) "exists" true (D.exists db oid);
           Alcotest.(check string) "class" "counter" (D.class_of db oid);
           ignore (D.call db oid "incr" []);
           ignore (D.call db oid "incr" []);
           Alcotest.(check bool)
             "value" true
             (Value.equal (D.call db oid "get" []) (Value.Int 2));
           oid))
  in
  (* committed state survives into the next transaction *)
  expect_ok
    (D.with_txn db (fun _ ->
         Alcotest.(check bool)
           "persisted" true
           (Value.equal (D.get_field db oid "n") (Value.Int 2))))

let test_errors () =
  let db = fresh_db () in
  Alcotest.check_raises "no txn"
    (D.Ode_error "this operation requires an active transaction") (fun () ->
      ignore (D.create db "counter" []));
  expect_ok
    (D.with_txn db (fun _ ->
         Alcotest.check_raises "unknown class" (D.Ode_error "no such class nope")
           (fun () -> ignore (D.create db "nope" []));
         let oid = D.create db "counter" [] in
         Alcotest.check_raises "unknown method"
           (D.Ode_error "class counter has no method nope") (fun () ->
             ignore (D.call db oid "nope" []));
         Alcotest.check_raises "unknown field"
           (D.Ode_error "class counter has no field nope") (fun () ->
             ignore (D.get_field db oid "nope"))))

let test_abort_rolls_back () =
  let db = fresh_db () in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "counter" [] in
           ignore (D.call db oid "incr" []);
           oid))
  in
  (* an explicit abort undoes the increments *)
  let tx = D.begin_txn db in
  ignore (D.call db oid "incr" []);
  ignore (D.call db oid "incr" []);
  Alcotest.(check bool) "visible inside" true (Value.equal (D.get_field db oid "n") (Value.Int 3));
  D.abort db tx;
  Alcotest.(check bool) "rolled back" true (Value.equal (D.get_field db oid "n") (Value.Int 1))

let test_abort_removes_created () =
  let db = fresh_db () in
  let tx = D.begin_txn db in
  let oid = D.create db "counter" [] in
  D.abort db tx;
  Alcotest.(check bool) "creation undone" false (D.exists db oid)

let test_abort_restores_deleted () =
  let db = fresh_db () in
  let oid = expect_ok (D.with_txn db (fun _ -> D.create db "counter" [])) in
  let tx = D.begin_txn db in
  D.delete db oid;
  Alcotest.(check bool) "deleted inside" false (D.exists db oid);
  D.abort db tx;
  Alcotest.(check bool) "restored" true (D.exists db oid);
  expect_ok (D.with_txn db (fun _ -> D.delete db oid));
  Alcotest.(check bool) "really deleted" false (D.exists db oid)

let test_tabort_exception () =
  let db = fresh_db () in
  let oid = expect_ok (D.with_txn db (fun _ -> D.create db "counter" [])) in
  let result =
    D.with_txn db (fun _ ->
        ignore (D.call db oid "incr" []);
        raise D.Tabort)
  in
  Alcotest.(check bool) "aborted" true (result = Error `Aborted);
  expect_ok
    (D.with_txn db (fun _ ->
         Alcotest.(check bool)
           "rolled back" true
           (Value.equal (D.get_field db oid "n") (Value.Int 0))))

let test_lock_conflict () =
  let db = fresh_db () in
  let oid = expect_ok (D.with_txn db (fun _ -> D.create db "counter" [])) in
  let tx1 = D.begin_txn db in
  ignore (D.call db oid "incr" []);
  let tx2 = D.begin_txn db in
  (* tx2 is now current; an updating call must hit tx1's exclusive lock *)
  Alcotest.check_raises "write-write conflict" (D.Lock_conflict oid) (fun () ->
      ignore (D.call db oid "incr" []));
  D.abort db tx2;
  D.switch_txn db tx1;
  ignore (D.call db oid "incr" []);
  expect_ok (D.commit db tx1);
  (* shared readers coexist *)
  let tx3 = D.begin_txn db in
  ignore (D.call db oid "get" []);
  let tx4 = D.begin_txn db in
  ignore (D.call db oid "get" []);
  (* but a writer cannot upgrade past another reader *)
  Alcotest.check_raises "read-write conflict" (D.Lock_conflict oid) (fun () ->
      ignore (D.call db oid "incr" []));
  D.abort db tx4;
  D.switch_txn db tx3;
  ignore (D.call db oid "incr" []) (* sole reader upgrades *);
  expect_ok (D.commit db tx3)

let test_simple_trigger () =
  let fired = ref 0 in
  let triggers b =
    D.trigger b ~perpetual:true "T" ~event:(Ode_event.Expr.after "incr")
      ~action:(fun _ _ -> incr fired)
  in
  let db = fresh_db ~triggers () in
  expect_ok
    (D.with_txn db (fun _ ->
         let oid = D.create db "counter" [] in
         D.activate db oid "T" [];
         ignore (D.call db oid "incr" []);
         ignore (D.call db oid "incr" [])));
  Alcotest.(check int) "fired per call" 2 !fired

let test_once_trigger_and_reactivation () =
  let fired = ref 0 in
  let triggers b =
    D.trigger b "T" ~event:(Ode_event.Expr.after "incr") ~action:(fun _ _ -> incr fired)
  in
  let db = fresh_db ~triggers () in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "counter" [] in
           D.activate db oid "T" [];
           ignore (D.call db oid "incr" []);
           ignore (D.call db oid "incr" []);
           oid))
  in
  Alcotest.(check int) "ordinary trigger fires once" 1 !fired;
  expect_ok
    (D.with_txn db (fun _ ->
         Alcotest.(check bool) "deactivated" false (D.is_active db oid "T");
         D.activate db oid "T" [];
         ignore (D.call db oid "incr" [])));
  Alcotest.(check int) "reactivated fires again" 2 !fired

let test_trigger_state_words () =
  let triggers b =
    D.trigger b "T"
      ~event:(P.parse_event "after tbegin; before update; after update; before tcomplete")
      ~action:(fun _ _ -> ())
  in
  let db = fresh_db ~triggers () in
  expect_ok
    (D.with_txn db (fun _ ->
         let oid = D.create db "counter" [] in
         D.activate db oid "T" [];
         Alcotest.(check int)
           "one word per active trigger per object (§5)" 1
           (D.trigger_state_words db oid "T")))

let test_transaction_events () =
  (* the paper's §3.4 example: a transaction that begins, performs exactly
     one (update) access, and completes *)
  let fired = ref [] in
  let triggers b =
    D.trigger b ~perpetual:true "minimal"
      ~event:
        (P.parse_event
           "after tbegin; before access; before update; before incr; after incr; \
            after update; after access; before tcomplete")
      ~action:(fun db ctx -> fired := (ctx.D.fc_oid, D.now db) :: !fired)
  in
  let db = fresh_db ~triggers () in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "counter" [] in
           D.activate db oid "minimal" [];
           oid))
  in
  (* a transaction doing exactly one incr fires it *)
  expect_ok (D.with_txn db (fun _ -> ignore (D.call db oid "incr" [])));
  Alcotest.(check int) "minimal txn detected" 1 (List.length !fired);
  (* two incrs break the adjacency *)
  expect_ok
    (D.with_txn db (fun _ ->
         ignore (D.call db oid "incr" []);
         ignore (D.call db oid "incr" [])));
  Alcotest.(check int) "busier txn not detected" 1 (List.length !fired)

let test_committed_mode_rollback () =
  (* choose 2 (after incr) in committed mode: an aborted incr must not
     consume the count. *)
  let fired = ref 0 in
  let triggers b =
    D.trigger b ~perpetual:true ~mode:Ode_event.Detector.Committed "second"
      ~event:(Ode_event.Expr.choose 2 (Ode_event.Expr.after "incr"))
      ~action:(fun _ _ -> incr fired)
  in
  let db = fresh_db ~triggers () in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "counter" [] in
           D.activate db oid "second" [];
           ignore (D.call db oid "incr" []);
           oid))
  in
  (* aborted second incr: fires inside the doomed transaction but the
     detection state rolls back *)
  let tx = D.begin_txn db in
  ignore (D.call db oid "incr" []);
  D.abort db tx;
  Alcotest.(check int) "fired optimistically" 1 !fired;
  (* the next committed incr is (again) the second: fires once more *)
  expect_ok (D.with_txn db (fun _ -> ignore (D.call db oid "incr" [])));
  Alcotest.(check int) "fired after rollback" 2 !fired;
  (* and in full-history mode the aborted incr would have consumed it: *)
  let fired_full = ref 0 in
  let db2 =
    let t b =
      D.trigger b ~perpetual:true "second"
        ~event:(Ode_event.Expr.choose 2 (Ode_event.Expr.after "incr"))
        ~action:(fun _ _ -> incr fired_full)
    in
    fresh_db ~triggers:t ()
  in
  let oid2 =
    expect_ok
      (D.with_txn db2 (fun _ ->
           let o = D.create db2 "counter" [] in
           D.activate db2 o "second" [];
           ignore (D.call db2 o "incr" []);
           o))
  in
  let tx2 = D.begin_txn db2 in
  ignore (D.call db2 oid2 "incr" []);
  D.abort db2 tx2;
  expect_ok (D.with_txn db2 (fun _ -> ignore (D.call db2 oid2 "incr" [])));
  Alcotest.(check int) "full history counts the aborted incr" 1 !fired_full

let test_tabort_from_action () =
  (* T1-style: an unauthorized update aborts the transaction. *)
  let triggers b =
    D.trigger b ~perpetual:true "guard"
      ~event:
        (Ode_event.Expr.before
           ~mask:Ode_event.Mask.(Not (Call ("authorized", [])))
           "incr")
      ~action:(fun _ _ -> raise D.Tabort)
  in
  let db = fresh_db ~triggers () in
  let allowed = ref true in
  D.register_fun db "authorized" (fun _ _ -> Value.Bool !allowed);
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "counter" [] in
           D.activate db oid "guard" [];
           ignore (D.call db oid "incr" []);
           oid))
  in
  allowed := false;
  let result = D.with_txn db (fun _ -> ignore (D.call db oid "incr" [])) in
  Alcotest.(check bool) "aborted by trigger" true (result = Error `Aborted);
  allowed := true;
  expect_ok
    (D.with_txn db (fun _ ->
         Alcotest.(check bool)
           "only the authorized incr persisted" true
           (Value.equal (D.get_field db oid "n") (Value.Int 1))))

let test_tcomplete_cascade () =
  (* A deferred trigger whose action performs another update: the next
     before-tcomplete round sees it; the rounds terminate. *)
  let triggers b =
    D.trigger b "flush"
      ~event:(P.parse_event "fa(after incr, before tcomplete, after tbegin)")
      ~action:(fun db ctx ->
        ignore (D.call db ctx.D.fc_oid "incr" []))
  in
  let db = fresh_db ~triggers () in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "counter" [] in
           D.activate db oid "flush" [];
           ignore (D.call db oid "incr" []);
           oid))
  in
  expect_ok
    (D.with_txn db (fun _ ->
         Alcotest.(check bool)
           "deferred action ran before commit" true
           (Value.equal (D.get_field db oid "n") (Value.Int 2))))

let test_firings_log () =
  let triggers b =
    D.trigger b ~perpetual:true "T" ~event:(Ode_event.Expr.after "incr")
      ~action:(fun _ _ -> ())
  in
  let db = fresh_db ~triggers () in
  let seen = ref [] in
  let sub = D.subscribe_firings db (fun f -> seen := f :: !seen) in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "counter" [] in
           D.activate db oid "T" [];
           ignore (D.call db oid "incr" []);
           oid))
  in
  (match !seen with
  | [ f ] ->
    Alcotest.(check string) "trigger name" "T" f.D.f_trigger;
    Alcotest.(check string) "class" "counter" f.D.f_class
  | fs -> Alcotest.failf "expected one firing, got %d" (List.length fs));
  D.unsubscribe db sub;
  expect_ok (D.with_txn db (fun _ -> ignore (D.call db oid "incr" [])));
  Alcotest.(check int) "unsubscribed: no further deliveries" 1
    (List.length !seen)

let test_parameter_collection () =
  (* §9: arguments carried by constituent events are collected and handed
     to the action when the composite fires. *)
  let seen = ref [] in
  let db = D.create_db () in
  D.register_class db
    (D.define_class "ledger"
    |> (fun b -> D.method_ b ~kind:D.Updating "credit" (fun _ _ _ -> Value.Unit))
    |> (fun b -> D.method_ b ~kind:D.Updating "debit" (fun _ _ _ -> Value.Unit))
    |> fun b ->
    D.trigger b ~perpetual:true "transfer"
      ~event:(P.parse_event "after credit(dst, q1); after debit(src, q2)")
      ~action:(fun _ ctx -> seen := ctx.D.fc_collected :: !seen));
  expect_ok
    (D.with_txn db (fun _ ->
         let oid = D.create db "ledger" [] in
         D.activate db oid "transfer" [];
         ignore (D.call db oid "credit" [ Value.Oid 7; Value.Int 100 ]);
         ignore (D.call db oid "debit" [ Value.Oid 9; Value.Int 100 ])));
  match !seen with
  | [ collected ] ->
    let get name = List.assoc name collected in
    Alcotest.(check bool) "dst" true (Value.equal (get "dst") (Value.Oid 7));
    Alcotest.(check bool) "q1" true (Value.equal (get "q1") (Value.Int 100));
    Alcotest.(check bool) "src" true (Value.equal (get "src") (Value.Oid 9));
    Alcotest.(check bool) "q2" true (Value.equal (get "q2") (Value.Int 100))
  | fs -> Alcotest.failf "expected one firing, got %d" (List.length fs)

let test_collection_latest_wins () =
  let seen = ref [] in
  let db = D.create_db () in
  D.register_class db
    (D.define_class "c"
    |> (fun b -> D.method_ b ~kind:D.Updating "put" (fun _ _ _ -> Value.Unit))
    |> fun b ->
    D.trigger b ~perpetual:true "third"
      ~event:(P.parse_event "choose 3 (after put(x))")
      ~action:(fun _ ctx -> seen := List.assoc "x" ctx.D.fc_collected :: !seen));
  expect_ok
    (D.with_txn db (fun _ ->
         let oid = D.create db "c" [] in
         D.activate db oid "third" [];
         List.iter
           (fun v -> ignore (D.call db oid "put" [ Value.Int v ]))
           [ 10; 20; 30 ]));
  Alcotest.(check bool)
    "the completing occurrence's value" true
    (!seen = [ Value.Int 30 ])

let test_action_exception_propagates () =
  (* a non-Tabort exception from an action aborts the transaction and
     re-raises to the caller *)
  let triggers b =
    D.trigger b ~perpetual:true "boom" ~event:(Ode_event.Expr.after "incr")
      ~action:(fun _ _ -> failwith "action crashed")
  in
  let db = fresh_db ~triggers () in
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "counter" [] in
           ignore (D.call db oid "incr" []);
           D.activate db oid "boom" [];
           oid))
  in
  (match D.with_txn db (fun _ -> ignore (D.call db oid "incr" [])) with
  | _ -> Alcotest.fail "exception was swallowed"
  | exception Failure msg -> Alcotest.(check string) "propagated" "action crashed" msg);
  expect_ok
    (D.with_txn db (fun _ ->
         Alcotest.(check bool)
           "transaction was rolled back" true
           (Value.equal (D.get_field db oid "n") (Value.Int 1))))

let test_mask_eval_failure () =
  (* a mask calling an unregistered function surfaces as Ode_error *)
  let triggers b =
    D.trigger b ~perpetual:true "bad"
      ~event:
        (Ode_event.Expr.before
           ~mask:(Ode_event.Mask.Call ("no_such_function", []))
           "incr")
      ~action:(fun _ _ -> ())
  in
  let db = fresh_db ~triggers () in
  let raised =
    match
      D.with_txn db (fun _ ->
          let oid = D.create db "counter" [] in
          D.activate db oid "bad" [];
          ignore (D.call db oid "incr" []))
    with
    | _ -> false
    | exception D.Ode_error _ -> true
  in
  Alcotest.(check bool) "mask failure reported" true raised

let test_interleaved_committed_rollback () =
  (* two interleaved transactions on different objects, each advancing a
     Committed-mode counter; aborting one must roll back only its own
     object's detection state *)
  let fired = ref [] in
  let triggers b =
    D.trigger b ~perpetual:true ~mode:Ode_event.Detector.Committed "second"
      ~event:(Ode_event.Expr.choose 2 (Ode_event.Expr.after "incr"))
      ~action:(fun _ ctx -> fired := ctx.D.fc_oid :: !fired)
  in
  let db = fresh_db ~triggers () in
  let mk () =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "counter" [] in
           D.activate db oid "second" [];
           oid))
  in
  let a = mk () and b = mk () in
  let tx1 = D.begin_txn db in
  ignore (D.call db a "incr" []);
  let tx2 = D.begin_txn db in
  ignore (D.call db b "incr" []);
  (* abort tx1: a's count rolls back to 0; commit tx2: b keeps 1 *)
  D.abort db tx1;
  D.switch_txn db tx2;
  expect_ok (D.commit db tx2);
  expect_ok
    (D.with_txn db (fun _ ->
         ignore (D.call db a "incr" []);
         ignore (D.call db b "incr" [])));
  (* b reached its 2nd committed incr; a only its 1st *)
  Alcotest.(check (list int)) "only b fired" [ b ] !fired;
  expect_ok (D.with_txn db (fun _ -> ignore (D.call db a "incr" [])));
  Alcotest.(check (list int)) "then a fires on its true 2nd" [ a; b ] !fired

let test_read_events () =
  (* read-only methods post read events, updating ones post update events *)
  let reads = ref 0 and updates = ref 0 in
  let triggers b =
    D.trigger b ~perpetual:true "r" ~event:(P.parse_event "after read")
      ~action:(fun _ _ -> incr reads)
    |> fun b ->
    D.trigger b ~perpetual:true "u" ~event:(P.parse_event "after update")
      ~action:(fun _ _ -> incr updates)
  in
  let db = fresh_db ~triggers () in
  expect_ok
    (D.with_txn db (fun _ ->
         let oid = D.create db "counter" [] in
         D.activate db oid "r" [];
         D.activate db oid "u" [];
         ignore (D.call db oid "get" []);
         ignore (D.call db oid "get" []);
         ignore (D.call db oid "incr" [])));
  Alcotest.(check int) "reads" 2 !reads;
  Alcotest.(check int) "updates" 1 !updates

let test_state_event_trigger () =
  (* the paper's pre-composite Ode trigger form: a bare boolean over the
     object state, i.e. (after update | after create) && balance < 500 *)
  let alerts = ref 0 in
  let db = D.create_db () in
  D.register_class db
    (D.define_class "account"
       ~constructor:(fun db oid _ -> D.activate db oid "low" [])
    |> (fun b -> D.field b "balance" (Value.Int 1000))
    |> (fun b ->
         D.method_ b ~arity:1 ~kind:D.Updating "set" (fun db oid args ->
             D.set_field db oid "balance" (List.hd args);
             Value.Unit))
    |> fun b ->
    D.trigger_str b ~perpetual:true "low" ~event:"balance < 500"
      ~action:(fun _ _ -> incr alerts));
  let oid = expect_ok (D.with_txn db (fun _ -> D.create db "account" [])) in
  Alcotest.(check int) "created above the bar" 0 !alerts;
  expect_ok (D.with_txn db (fun _ -> ignore (D.call db oid "set" [ Value.Int 700 ])));
  Alcotest.(check int) "still above" 0 !alerts;
  expect_ok (D.with_txn db (fun _ -> ignore (D.call db oid "set" [ Value.Int 300 ])));
  Alcotest.(check int) "below fires" 1 !alerts;
  expect_ok (D.with_txn db (fun _ -> ignore (D.call db oid "set" [ Value.Int 100 ])));
  Alcotest.(check int) "fires per qualifying update" 2 !alerts;
  (* creating an account already below the bar fires via after create *)
  let db2 = D.create_db () in
  let alerts2 = ref 0 in
  D.register_class db2
    (D.define_class "account"
       ~constructor:(fun db oid _ ->
         D.set_field db oid "balance" (Value.Int 100);
         D.activate db oid "low" [])
    |> (fun b -> D.field b "balance" (Value.Int 1000))
    |> fun b ->
    D.trigger_str b ~perpetual:true "low" ~event:"balance < 500"
      ~action:(fun _ _ -> incr alerts2));
  ignore (expect_ok (D.with_txn db2 (fun _ -> D.create db2 "account" [])));
  Alcotest.(check int) "after create sees the state" 1 !alerts2

let test_witness_trigger () =
  (* ~witnesses:true: the action receives one binding environment per way
     the composite matched — both pending transfers complete on the debit *)
  let seen = ref [] in
  let db = D.create_db () in
  D.register_class db
    (D.define_class "ledger"
    |> (fun b -> D.method_ b ~kind:D.Updating "credit" (fun _ _ _ -> Value.Unit))
    |> (fun b -> D.method_ b ~kind:D.Updating "debit" (fun _ _ _ -> Value.Unit))
    |> fun b ->
    D.trigger b ~perpetual:true ~witnesses:true "transfer"
      ~event:(P.parse_event "relative(after credit(dst, q), after debit(src, p))")
      ~action:(fun _ ctx ->
        match ctx.D.fc_witnesses with
        | Some ws -> seen := ws :: !seen
        | None -> Alcotest.fail "witnesses missing"));
  expect_ok
    (D.with_txn db (fun _ ->
         let oid = D.create db "ledger" [] in
         D.activate db oid "transfer" [];
         ignore (D.call db oid "credit" [ Value.Oid 7; Value.Int 10 ]);
         ignore (D.call db oid "credit" [ Value.Oid 9; Value.Int 20 ]);
         ignore (D.call db oid "debit" [ Value.Oid 3; Value.Int 30 ])));
  match !seen with
  | [ ws ] ->
    Alcotest.(check int) "two witnesses" 2 (List.length ws);
    let dsts = List.sort compare (List.map (fun b -> List.assoc "dst" b) ws) in
    Alcotest.(check bool) "both credits witnessed" true
      (dsts = [ Value.Oid 7; Value.Oid 9 ])
  | firings -> Alcotest.failf "expected one firing, got %d" (List.length firings)

let test_stats () =
  let triggers b =
    D.trigger b ~perpetual:true "T" ~event:(Ode_event.Expr.after "incr")
      ~action:(fun _ _ -> ())
  in
  let db = fresh_db ~triggers () in
  expect_ok
    (D.with_txn db (fun _ ->
         for _ = 1 to 5 do
           let oid = D.create db "counter" [] in
           D.activate db oid "T" []
         done));
  let s = D.stats db in
  Alcotest.(check int) "objects" 5 s.D.n_objects;
  Alcotest.(check int) "activations" 5 s.D.n_active_triggers;
  Alcotest.(check int) "8 bytes per activation" 40 s.D.state_bytes

let suite =
  [
    Alcotest.test_case "create/call/commit" `Quick test_basics;
    Alcotest.test_case "schema errors" `Quick test_errors;
    Alcotest.test_case "abort rolls back fields" `Quick test_abort_rolls_back;
    Alcotest.test_case "abort removes created objects" `Quick test_abort_removes_created;
    Alcotest.test_case "abort restores deleted objects" `Quick test_abort_restores_deleted;
    Alcotest.test_case "tabort aborts via with_txn" `Quick test_tabort_exception;
    Alcotest.test_case "object-level locking" `Quick test_lock_conflict;
    Alcotest.test_case "simple trigger" `Quick test_simple_trigger;
    Alcotest.test_case "once-trigger and reactivation" `Quick test_once_trigger_and_reactivation;
    Alcotest.test_case "one word of state (§5)" `Quick test_trigger_state_words;
    Alcotest.test_case "transaction events (§3.4)" `Quick test_transaction_events;
    Alcotest.test_case "committed mode rollback (§6)" `Quick test_committed_mode_rollback;
    Alcotest.test_case "tabort from trigger action" `Quick test_tabort_from_action;
    Alcotest.test_case "tcomplete cascade (§6)" `Quick test_tcomplete_cascade;
    Alcotest.test_case "firing log" `Quick test_firings_log;
    Alcotest.test_case "parameter collection (§9)" `Quick test_parameter_collection;
    Alcotest.test_case "collection keeps latest" `Quick test_collection_latest_wins;
    Alcotest.test_case "action exceptions propagate" `Quick test_action_exception_propagates;
    Alcotest.test_case "mask evaluation failure" `Quick test_mask_eval_failure;
    Alcotest.test_case "interleaved committed rollback" `Quick test_interleaved_committed_rollback;
    Alcotest.test_case "read/update event kinds" `Quick test_read_events;
    Alcotest.test_case "state events (bare boolean)" `Quick test_state_event_trigger;
    Alcotest.test_case "witness triggers (§9 provenance)" `Quick test_witness_trigger;
    Alcotest.test_case "stats" `Quick test_stats;
  ]

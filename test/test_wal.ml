(* The WAL durability backend: the crash-injection harness (randomized
   kill and corruption points over a logged workload, recovery compared
   byte-for-byte against shadow snapshots captured at every batch
   boundary), checkpoint rotation, the group-commit window, the
   ODE_DURABILITY selector, the snapshot-bytes = save-bytes property
   and the frame scanner's damage classification. *)

open Ode_odb

module D = struct
  include Database

  (* this suite drives the single-engine WAL internals (it reads
     snap-<g>.ode1 / wal-<g>.log at the directory root and cuts the log
     by hand), so pin partitions = 1 whatever ODE_PARTITIONS says —
     the partitioned WAL layout is covered by test_partition.ml *)
  let create_db ?backend ?durability () =
    let c = { (Config.of_env ()) with Config.partitions = 1 } in
    create_db ~config:c ?backend ?durability ()
end

module Value = Ode_base.Value
module Codec = Ode_base.Codec
module Obs = Ode_obs.Registry

let expect_ok = function
  | Ok v -> v
  | Error `Aborted -> Alcotest.fail "transaction unexpectedly aborted"

let fresh_dir () =
  let d = Filename.temp_file "ode_wal" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

(* The workload schema leans on every durable-state shape the log must
   carry: fields, a full-history trigger (advances survive aborts — the
   reason redo records are full-object upserts), a committed-mode
   trigger (undo interplay), and a periodic time event (timer queue +
   clock). *)
let schema () =
  D.define_class "item"
  |> (fun b -> D.field b "qty" (Value.Int 0))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "deposit" (fun db oid args ->
           match args with
           | [ q ] ->
             D.set_field db oid "qty" (Value.add (D.get_field db oid "qty") q);
             Value.Unit
           | _ -> Value.Unit))
  |> (fun b ->
       D.method_ b ~kind:D.Updating "withdraw" (fun db oid args ->
           match args with
           | [ q ] ->
             D.set_field db oid "qty" (Value.sub (D.get_field db oid "qty") q);
             Value.Unit
           | _ -> Value.Unit))
  |> (fun b ->
       D.trigger_str b ~perpetual:true "pair"
         ~event:"after deposit; after deposit"
         ~action:(fun _ _ -> ()))
  |> (fun b ->
       D.trigger_str b ~perpetual:true ~mode:Ode_event.Detector.Committed
         "cpair" ~event:"after withdraw; after withdraw"
         ~action:(fun _ _ -> ()))
  |> fun b ->
  D.trigger_str b ~perpetual:true "tick" ~event:"every time(MS=70)"
    ~action:(fun _ _ -> ())

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(* One workload transaction: a handful of random operations, then a
   commit or (1 in 5) an explicit abort. Clock advances — their own
   emission point — happen between transactions. Strictly sequential
   transactions, so the n-th shadow snapshot is exactly what replaying
   n frames must reconstruct. *)
let step rng db =
  if Random.State.int rng 4 = 0 then
    D.advance_clock db (Int64.of_int (20 + Random.State.int rng 100));
  let live = D.objects db in
  let tx = D.begin_txn db in
  (try
     for _ = 1 to 1 + Random.State.int rng 4 do
       match Random.State.int rng 10 with
       | 0 | 1 ->
         let oid = D.create db "item" [] in
         D.activate db oid
           (if Random.State.bool rng then "pair" else "cpair")
           [];
         if Random.State.int rng 3 = 0 then D.activate db oid "tick" []
       | 2 when live <> [] -> (
         let oid = pick rng live in
         if D.exists db oid then D.delete db oid)
       | 3 when live <> [] ->
         let oid = pick rng live in
         if D.exists db oid then
           D.set_field db oid "qty" (Value.Int (Random.State.int rng 100))
       | 4 when live <> [] ->
         let oid = pick rng live in
         if D.exists db oid then D.activate db oid "pair" []
       | 5 when live <> [] ->
         let oid = pick rng live in
         if D.exists db oid then D.deactivate db oid "cpair"
       | _ when live <> [] ->
         let oid = pick rng live in
         if D.exists db oid then
           ignore
             (D.call db oid
                (if Random.State.bool rng then "deposit" else "withdraw")
                [ Value.Int (1 + Random.State.int rng 9) ])
       | _ -> ()
     done;
     if Random.State.int rng 5 = 0 then D.abort db tx
     else
       match D.commit db tx with Ok () -> () | Error `Aborted -> ()
   with D.Lock_conflict _ -> D.abort db tx)

(* A probe run after recovery: does the revived database *behave*
   identically — firings, transaction ids, timer deliveries — not just
   carry equal bytes? *)
let probe pdb =
  let fired = ref [] in
  let _s =
    D.subscribe_firings pdb (fun f ->
        fired := (f.D.f_trigger, f.D.f_oid, f.D.f_txn) :: !fired)
  in
  (match
     D.with_txn pdb (fun _ ->
         let o = D.create pdb "item" [] in
         D.activate pdb o "pair" [];
         ignore (D.call pdb o "deposit" [ Value.Int 1 ]);
         ignore (D.call pdb o "deposit" [ Value.Int 2 ]);
         match D.objects pdb with
         | o0 :: _ -> ignore (D.call pdb o0 "deposit" [ Value.Int 3 ])
         | [] -> ())
   with
  | Ok () -> ()
  | Error `Aborted -> ());
  D.advance_clock pdb 100L;
  (List.rev !fired, D.image_bytes pdb)

(* The load-bearing invariant of the whole layer: whatever point the
   log is killed or corrupted at, snapshot + replay reconstructs a
   state byte-identical to the shadow image captured when the last
   surviving batch was emitted — and the revived database behaves
   identically from there on. *)
let crash_harness ~backend ~points ~seed () =
  let dir = fresh_dir () in
  let shadows = ref [] in
  let cfg =
    (* every batch flushed eagerly and no checkpoints, so wal-0.log
       accumulates the workload's full frame sequence *)
    Wal.config ~flush_ms:0 ~sync_on_flush:false ~snapshot_every:0
      ~on_batch:(fun tdb -> shadows := Persist.image_bytes tdb :: !shadows)
      dir
  in
  let db = D.create_db ~backend ~durability:(`Wal cfg) () in
  D.register_class db (schema ());
  let base = D.image_bytes db in
  Alcotest.(check bool) "baseline snapshot = initial image" true
    (String.equal (Codec.of_file (Wal.snap_path dir 0)) base);
  let rng = Random.State.make [| seed |] in
  for _ = 1 to 40 do
    step rng db
  done;
  D.close_durability db;
  let shadows = Array.of_list (List.rev !shadows) in
  let log = Codec.of_file (Wal.wal_path dir 0) in
  let snap = Codec.of_file (Wal.snap_path dir 0) in
  let hdr = String.length Wal.header in
  Alcotest.(check bool) "workload produced a substantial log" true
    (Array.length shadows > 60 && String.length log > hdr);
  for point = 1 to points do
    (* kill: cut the log at a random offset; 1 in 10 points corrupt a
       random byte instead (torn sector rather than lost tail) *)
    let damaged =
      if Random.State.int rng 10 = 0 then begin
        let i = hdr + Random.State.int rng (String.length log - hdr) in
        let b = Bytes.of_string log in
        Bytes.set b i
          (Char.chr
             (Char.code (Bytes.get b i) lxor (1 + Random.State.int rng 255)));
        Bytes.to_string b
      end
      else
        String.sub log 0 (hdr + Random.State.int rng (String.length log - hdr + 1))
    in
    let n = List.length (Wal.scan_bytes damaged).Wal.frames in
    let dir2 = fresh_dir () in
    Codec.to_file (Wal.snap_path dir2 0) snap;
    Codec.to_file (Wal.wal_path dir2 0) damaged;
    let rdb = D.create_db ~backend ~durability:(`Wal (Wal.config dir2)) () in
    D.register_class rdb (schema ());
    D.recover rdb;
    let expected = if n = 0 then base else shadows.(n - 1) in
    if not (String.equal (D.image_bytes rdb) expected) then
      Alcotest.failf "crash point %d: recovery after %d batches diverges" point
        n;
    (* recovery re-baselined: the damaged tail is gone for good *)
    let g = Option.get (Wal.latest_gen dir2) in
    if g < 1 then Alcotest.failf "crash point %d: no re-baseline" point;
    (* every 10th point, drive both databases forward and compare
       behaviour, not just bytes *)
    if point mod 10 = 0 then begin
      let sdb = D.create_db ~backend ~durability:`Image () in
      D.register_class sdb (schema ());
      let f = Filename.temp_file "ode_wal_shadow" ".img" in
      Codec.to_file f expected;
      D.load sdb f;
      Sys.remove f;
      let fired_r, img_r = probe rdb in
      let fired_s, img_s = probe sdb in
      if fired_r <> fired_s then
        Alcotest.failf "crash point %d: probe firings diverge" point;
      if not (String.equal img_r img_s) then
        Alcotest.failf "crash point %d: probe images diverge" point
    end
  done

let test_crash_heap () = crash_harness ~backend:`Heap ~points:250 ~seed:42 ()

let test_crash_sharded () =
  crash_harness ~backend:(`Sharded 4) ~points:250 ~seed:43 ()

(* Checkpoints rotate the generation pair: the old snapshot + log are
   retired, and recovery from the rotated directory still reconstructs
   the exact final state. *)
let test_checkpoint_rotation () =
  let dir = fresh_dir () in
  let cfg =
    Wal.config ~flush_ms:0 ~sync_on_flush:false ~snapshot_every:5 dir
  in
  let db = D.create_db ~durability:(`Wal cfg) () in
  D.register_class db (schema ());
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 15 do
    step rng db
  done;
  D.close_durability db;
  let g = Option.get (Wal.latest_gen dir) in
  Alcotest.(check bool) "checkpoints rotated the generation" true (g > 0);
  Alcotest.(check bool) "old pair retired" false
    (Sys.file_exists (Wal.snap_path dir 0) || Sys.file_exists (Wal.wal_path dir 0));
  let img = D.image_bytes db in
  let db2 = D.create_db ~durability:(`Wal (Wal.config dir)) () in
  D.register_class db2 (schema ());
  D.recover db2;
  Alcotest.(check bool) "recovery from a rotated directory" true
    (String.equal (D.image_bytes db2) img)

(* Under a wide-open group-commit window, batches buffer in memory and
   hit the disk only on an explicit sync — one physical write retiring
   many batches. *)
let test_group_commit_window () =
  let dir = fresh_dir () in
  let cfg =
    Wal.config ~flush_ms:3_600_000 ~sync_on_flush:false ~snapshot_every:0 dir
  in
  let db = D.create_db ~durability:(`Wal cfg) () in
  D.register_class db (schema ());
  D.set_observability db true;
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "item" [] in
           D.activate db oid "pair" [];
           oid))
  in
  for _ = 1 to 2 do
    expect_ok
      (D.with_txn db (fun _ -> ignore (D.call db oid "deposit" [ Value.Int 1 ])))
  done;
  (* 3 commits x (commit batch + after-tcommit system batch) *)
  let obs = D.observe db in
  Alcotest.(check int) "batches framed" 6 (Obs.get obs Obs.Wal_batches);
  Alcotest.(check int) "nothing flushed inside the window" 0
    (Obs.get obs Obs.Wal_flushes);
  let before = Wal.scan_file (Wal.wal_path dir 0) in
  Alcotest.(check int) "log still empty on disk" 0 (List.length before.Wal.frames);
  Alcotest.(check bool) "no damage" true (before.Wal.damage = None);
  D.sync_durability db;
  Alcotest.(check int) "one group flush retired them all" 1
    (Obs.get obs Obs.Wal_flushes);
  let after = Wal.scan_file (Wal.wal_path dir 0) in
  Alcotest.(check int) "all batches on disk after sync" 6
    (List.length after.Wal.frames);
  D.close_durability db;
  (* closed: further commits must not log *)
  expect_ok
    (D.with_txn db (fun _ -> ignore (D.call db oid "deposit" [ Value.Int 1 ])));
  Alcotest.(check int) "closed backend emits nothing" 6
    (List.length (Wal.scan_file (Wal.wal_path dir 0)).Wal.frames)

(* ODE_DURABILITY selects the backend at create_db, like
   ODE_STORE_BACKEND selects the heap. *)
let test_env_selector () =
  let old = Sys.getenv_opt "ODE_DURABILITY" in
  let restore () =
    Unix.putenv "ODE_DURABILITY" (match old with Some s -> s | None -> "")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "ODE_DURABILITY" "wal:0";
      let db = D.create_db () in
      Alcotest.(check bool) "wal:<ms> selects the WAL" true
        (String.length (D.durability_name db) >= 4
        && String.sub (D.durability_name db) 0 4 = "wal:");
      D.close_durability db;
      Unix.putenv "ODE_DURABILITY" "image";
      Alcotest.(check string) "image selects the codec" "image"
        (D.durability_name (D.create_db ()));
      Unix.putenv "ODE_DURABILITY" "";
      Alcotest.(check string) "empty means image" "image"
        (D.durability_name (D.create_db ()));
      Unix.putenv "ODE_DURABILITY" "bogus";
      Alcotest.(check bool) "unknown backend rejected" true
        (match D.create_db () with
        | exception D.Ode_error _ -> true
        | _ -> false);
      Unix.putenv "ODE_DURABILITY" "wal:x";
      Alcotest.(check bool) "bad flush window rejected" true
        (match D.create_db () with
        | exception D.Ode_error _ -> true
        | _ -> false))

(* Satellite invariant: a WAL checkpoint snapshot and [save] of the
   same state are the same bytes — one codec path, property-tested over
   random workloads. *)
let prop_snapshot_equals_save =
  QCheck.Test.make ~name:"WAL snapshot bytes = save bytes" ~count:20
    QCheck.small_int (fun seed ->
      let dir = fresh_dir () in
      let cfg =
        Wal.config ~flush_ms:0 ~sync_on_flush:false ~snapshot_every:0 dir
      in
      let db = D.create_db ~durability:(`Wal cfg) () in
      D.register_class db (schema ());
      let rng = Random.State.make [| seed; 77 |] in
      for _ = 1 to 8 do
        step rng db
      done;
      let f = Filename.temp_file "ode_wal_save" ".img" in
      D.save db f;
      let saved = Codec.of_file f in
      Sys.remove f;
      (* [save] checkpointed: the fresh generation's snapshot must be
         the very bytes just saved *)
      let g = Option.get (Wal.latest_gen dir) in
      let snap = Codec.of_file (Wal.snap_path dir g) in
      D.close_durability db;
      String.equal saved snap)

(* The frame scanner classifies every damage shape [odec wal-dump]
   reports. *)
let test_scan_damage_classification () =
  let dir = fresh_dir () in
  let cfg =
    Wal.config ~flush_ms:0 ~sync_on_flush:false ~snapshot_every:0 dir
  in
  let db = D.create_db ~durability:(`Wal cfg) () in
  D.register_class db (schema ());
  let oid =
    expect_ok
      (D.with_txn db (fun _ ->
           let oid = D.create db "item" [] in
           D.activate db oid "pair" [];
           oid))
  in
  D.close_durability db;
  let log = Codec.of_file (Wal.wal_path dir 0) in
  let intact = Wal.scan_bytes log in
  Alcotest.(check int) "intact: both batches" 2 (List.length intact.Wal.frames);
  Alcotest.(check bool) "intact: no damage" true (intact.Wal.damage = None);
  (* decode: the first batch upserted the created object *)
  (match Wal.decode_summary (List.hd intact.Wal.frames) with
  | { Wal.s_entries = [ Wal.Upsert { oid = o; class_name; n_triggers } ]; _ } ->
    Alcotest.(check int) "upserted oid" oid o;
    Alcotest.(check string) "class carried" "item" class_name;
    Alcotest.(check int) "activation carried" 1 n_triggers
  | _ -> Alcotest.fail "unexpected first-batch summary");
  (* lost tail: chop one byte off the end *)
  (match Wal.scan_bytes (String.sub log 0 (String.length log - 1)) with
  | { Wal.frames = [ _ ]; damage = Some (Wal.Truncated _) } -> ()
  | _ -> Alcotest.fail "expected a truncated tail");
  (* torn sector: flip the last byte *)
  let b = Bytes.of_string log in
  Bytes.set b (Bytes.length b - 1)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 0xFF));
  (match Wal.scan_bytes (Bytes.to_string b) with
  | { Wal.frames = [ _ ]; damage = Some (Wal.Bad_crc { index = 1; _ }) } -> ()
  | _ -> Alcotest.fail "expected a CRC failure on the second frame");
  match Wal.scan_bytes "BOGUS bytes" with
  | { Wal.damage = Some Wal.Bad_header; _ } -> ()
  | _ -> Alcotest.fail "expected a header failure"

let suite =
  [
    Alcotest.test_case "crash harness, heap backend (250 points)" `Quick
      test_crash_heap;
    Alcotest.test_case "crash harness, sharded backend (250 points)" `Quick
      test_crash_sharded;
    Alcotest.test_case "checkpoint rotation" `Quick test_checkpoint_rotation;
    Alcotest.test_case "group-commit window" `Quick test_group_commit_window;
    Alcotest.test_case "ODE_DURABILITY selector" `Quick test_env_selector;
    QCheck_alcotest.to_alcotest prop_snapshot_equals_save;
    Alcotest.test_case "scanner damage classification" `Quick
      test_scan_damage_classification;
  ]
